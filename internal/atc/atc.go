// Package atc implements the paper's execution coordinator (§4.2): the
// module that "looks across" every rank-merge operator's thresholds and
// decides, round-robin, which source to read next, routing each fetched tuple
// through split operators into all consuming m-joins, fully pipelined.
//
// The ATC also owns the runtime side of §6.3's unlinking: when a conjunctive
// query completes or is pruned, its endpoint is detached and the plan segment
// feeding only that query is parked — execution bindings are removed
// backwards until a split operator (a node with other live consumers) is
// reached — while all state (logs, modules, stream positions) is retained for
// reuse. Reviving a parked or freshly grafted segment tops its modules up
// from upstream logs and recovers its historical outputs (Algorithm 2's bulk
// form; see DESIGN.md).
package atc

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/remotedb"
	"repro/internal/source"
	"repro/internal/state"
)

// maxEvictedKeys caps the revival-classification key set (see DropExec).
const maxEvictedKeys = 8192

// MergeState tracks one user query's rank-merge within the controller.
type MergeState struct {
	RM *operator.RankMerge
	// Arrival is the user query's (virtual) submission time.
	Arrival time.Duration
	// Finished is when the rank-merge completed; valid when Done.
	Finished time.Duration
	Done     bool
	// Canceled marks a merge abandoned by its caller before completion; its
	// partial results are not meaningful.
	Canceled bool
	// Err records an execution failure (a scheduling round that did not
	// converge, or a panic recovered from an operator while driving this
	// merge). A failed merge is Done with no meaningful results; the serving
	// layer turns it into a failed search response instead of letting it
	// take down the process.
	Err error

	// nodeKeys is the merge's plan-graph footprint: every node its execution
	// can touch, captured once at submission and immutable afterwards —
	// sound because a registered rank-merge is never extended (the state
	// manager builds a fresh merge per user query; operator.AddEntry has no
	// engine caller), and unlinking only ever shrinks what a merge touches.
	// Merges whose footprints intersect — transitively — share runtime state
	// and form one scheduling component; see components.go.
	nodeKeys []string
}

// Latency returns the user query's response time.
func (m *MergeState) Latency() time.Duration { return m.Finished - m.Arrival }

// attachment records where a CQ's sink is wired, for unlinking.
type attachment struct {
	node *operator.NodeExec
	sink *operator.EndpointSink
}

// ATC coordinates one plan graph.
type ATC struct {
	Graph *plangraph.Graph
	Env   *operator.Env
	Fleet *remotedb.Fleet

	epoch  int
	execs  map[*plangraph.Node]*operator.NodeExec
	ras    map[*plangraph.Node]*source.RandomAccess
	merges []*MergeState
	// active holds the unfinished merges; RunRound iterates it and compacts
	// out completed entries so long-lived sessions don't rescan history.
	active []*MergeState
	byUQ   map[string]*MergeState // user-query id -> merge state
	attach map[string]attachment  // by CQ id

	// structMu guards the controller's shared structural maps (attach, the
	// graph's endpoint map) against concurrent unlinks from the parallel
	// executor's workers. Cross-component unlinks touch distinct keys, so
	// mutual exclusion preserves determinism; intra-component order is the
	// serial order by construction.
	structMu sync.Mutex

	// comps is the cached component partition of the active merges; dirty
	// marks it stale (merges admitted, finished or forgotten). components.go.
	comps     [][]*MergeState
	compDirty bool

	// par, when set, is the intra-shard parallel executor (EnableParallel):
	// worker pool, per-source-node delay models, pre-opened streams,
	// scheduling statistics. nil runs the serial engine byte-for-byte.
	par *parallelState

	// driveBound, when positive, overrides the defensive per-round step
	// bound (SetDriveBound; tests only).
	driveBound int

	// batchRows, when nonzero, overrides every exec's mini-batch target
	// (SetBatchRows); 0 leaves operator.DefaultBatchRows in effect.
	batchRows int

	// ledger, when bound, accounts every exec's and endpoint's resident
	// state incrementally (§6.3); spill, when bound, is the disk tier evicted
	// segments serialize to and revival restores from. Both are bound once by
	// the query state manager before any exec exists.
	ledger *state.Ledger
	spill  *state.Spill
	// SpillLost, when set, is told the expression key of a stream whose
	// spill segment turned out unrestorable: its retained prefix is gone for
	// real, so the state manager must drop the catalog's buffered-prefix
	// accounting the spill had been allowed to keep.
	SpillLost func(exprKey string)
	// evictedKeys remembers node keys whose state was dropped, so a later
	// re-creation can be classified as a revival from spill or from source
	// replay (the shared-fraction split the serving stats report).
	evictedKeys map[string]bool
	// staged holds migrated-in segments awaiting revival (migrate.go); they
	// are consumed by restoreStream/restoreJoin ahead of the disk tier and
	// behind the same consistency gate.
	staged map[string]stagedSeg
}

// New creates a controller for a plan graph.
func New(g *plangraph.Graph, env *operator.Env, fleet *remotedb.Fleet) *ATC {
	return &ATC{
		Graph:       g,
		Env:         env,
		Fleet:       fleet,
		epoch:       0,
		execs:       map[*plangraph.Node]*operator.NodeExec{},
		ras:         map[*plangraph.Node]*source.RandomAccess{},
		byUQ:        map[string]*MergeState{},
		attach:      map[string]attachment{},
		evictedKeys: map[string]bool{},
	}
}

// BindState attaches the execution-state subsystem: the accounting ledger
// (required for budget enforcement) and the optional spill tier. Must be
// called before any exec is created.
func (a *ATC) BindState(ledger *state.Ledger, spill *state.Spill) {
	a.ledger = ledger
	a.spill = spill
}

// SetBatchRows sets the executor's mini-batch target for every current and
// future exec (n <= 1 disables batching — the exact per-row engine; 0
// restores the default). Purely a grouping knob: digests and work counters
// are byte-identical at any value.
func (a *ATC) SetBatchRows(n int) {
	a.batchRows = n
	for _, x := range a.execs {
		x.SetBatchRows(n)
	}
}

// Epoch returns the current epoch (§6.2's logical timestamp).
func (a *ATC) Epoch() int { return a.epoch }

// BumpEpoch starts a new epoch (called by the state manager at each graft).
func (a *ATC) BumpEpoch() int {
	a.epoch++
	return a.epoch
}

// Merges returns the controller's rank-merge states in admission order.
func (a *ATC) Merges() []*MergeState { return a.merges }

// MergeByUQ returns the merge state for a user query id, or nil.
func (a *ATC) MergeByUQ(uqID string) *MergeState { return a.byUQ[uqID] }

// AddMerge registers a user query's rank-merge and captures its plan-graph
// footprint for component scheduling.
func (a *ATC) AddMerge(rm *operator.RankMerge, arrival time.Duration) *MergeState {
	m := &MergeState{RM: rm, Arrival: arrival, nodeKeys: a.mergeFootprint(rm)}
	a.merges = append(a.merges, m)
	a.active = append(a.active, m)
	a.byUQ[rm.UQ.ID] = m
	a.compDirty = true
	return m
}

// CancelMerge abandons an unfinished user query: its rank-merge is marked
// done, and every conjunctive query it was driving is unlinked so the plan
// segments feeding only it are parked (state retained for reuse, §6.3).
// Canceling a finished or unknown query is a no-op.
func (a *ATC) CancelMerge(uqID string) {
	m := a.byUQ[uqID]
	if m == nil || m.Done {
		return
	}
	m.Done = true
	m.Canceled = true
	m.Finished = a.Env.Clock.Now()
	a.compDirty = true
	for _, e := range m.RM.Entries {
		a.UnlinkCQ(e.CQ.ID)
	}
}

// Forget drops a completed user query from the controller's bookkeeping so a
// long-running session does not accumulate per-query history. The experiment
// drivers never call this — they read Merges() afterwards; the serving layer
// calls it once a result has been dispatched.
func (a *ATC) Forget(uqID string) {
	m := a.byUQ[uqID]
	if m == nil || !m.Done {
		return
	}
	delete(a.byUQ, uqID)
	for i, mm := range a.merges {
		if mm == m {
			a.merges = append(a.merges[:i], a.merges[i+1:]...)
			break
		}
	}
	// Also drop it from the active list: compaction only happens inside
	// RunRound, which an idle session may not reach again.
	for i, mm := range a.active {
		if mm == m {
			a.active = append(a.active[:i], a.active[i+1:]...)
			break
		}
	}
	a.compDirty = true
}

// Exec returns (creating on demand) the runtime state for a plan node,
// opening its remote source if it is a source node.
func (a *ATC) Exec(n *plangraph.Node) (*operator.NodeExec, error) {
	if x, ok := a.execs[n]; ok {
		x.SyncInputs()
		return x, nil
	}
	x := operator.NewNodeExec(n)
	if a.ledger != nil {
		x.SetAccount(a.ledger.NewAccount(n.Key))
	}
	if a.batchRows != 0 {
		x.SetBatchRows(a.batchRows)
	}
	switch n.Kind {
	case plangraph.SourceStream:
		st := a.takePreopened(n)
		if st == nil {
			db, err := a.Fleet.DB(n.DB)
			if err != nil {
				return nil, err
			}
			var err2 error
			st, err2 = source.OpenStream(db, n.Expr)
			if err2 != nil {
				return nil, err2
			}
		}
		x.Stream = st
		a.restoreStream(n, x)
	case plangraph.SourceProbe:
		db, err := a.Fleet.DB(n.DB)
		if err != nil {
			return nil, err
		}
		ra := source.OpenRandomAccess(db, n.Expr)
		a.ras[n] = ra
	}
	x.SetRAResolver(func(pn *plangraph.Node) *source.RandomAccess { return a.ras[pn] })
	a.execs[n] = x
	return x, nil
}

// restoreStream reinstalls a re-created stream source's spilled state: the
// stream skips its already-delivered prefix and the log gets its rows back
// with their original epoch stamps, all charged as local spill I/O rather
// than remote stream reads (§6.3 disk tier).
func (a *ATC) restoreStream(n *plangraph.Node, x *operator.NodeExec) {
	if seg, ok := a.takeStaged(n.Key); ok {
		snap := seg.snap
		if snap.Kind != int(plangraph.SourceStream) || snap.StreamPos > x.Stream.Len() {
			// The migrated prefix does not match this shard's view of the
			// source: it is lost, so the catalog must stop pricing it as
			// buffered and the stream re-derives from source replay.
			a.Env.Metrics.AddMigrationDrop()
			if a.SpillLost != nil {
				a.SpillLost(n.Expr.Key())
			}
			a.noteSourceRevival(n.Key)
			return
		}
		delete(a.evictedKeys, n.Key)
		x.Stream.Skip(snap.StreamPos)
		x.ImportLog(snap.LogRows, snap.LogEpochs)
		a.Env.ChargeSpillRead(snap.RowCount(), int64(seg.bytes))
		a.Env.Metrics.AddMigrationRestore()
		return
	}
	if a.spill == nil || !a.spill.Has(n.Key) {
		a.noteSourceRevival(n.Key)
		return
	}
	snap, rows, bytes, err := a.spill.Take(n.Key)
	if err != nil || snap == nil || snap.Kind != int(plangraph.SourceStream) || snap.StreamPos > x.Stream.Len() {
		// A segment existed but is unusable: the retained prefix is truly
		// lost, so the catalog must stop pricing it as buffered.
		a.spill.NoteDropped()
		if a.SpillLost != nil {
			a.SpillLost(n.Expr.Key())
		}
		a.noteSourceRevival(n.Key)
		return
	}
	delete(a.evictedKeys, n.Key)
	x.Stream.Skip(snap.StreamPos)
	x.ImportLog(snap.LogRows, snap.LogEpochs)
	a.Env.ChargeSpillRead(rows, bytes)
	a.Env.Metrics.AddRevivalFromSpill()
}

// noteSourceRevival classifies the re-creation of a previously evicted node
// whose state was not recoverable from spill: its history will be re-derived
// by fresh source work.
func (a *ATC) noteSourceRevival(key string) {
	if a.evictedKeys[key] {
		delete(a.evictedKeys, key)
		a.Env.Metrics.AddRevivalFromSource()
	}
}

// HasExec reports whether runtime state exists for the node (used by the
// state manager's memory accounting without forcing source opens).
func (a *ATC) HasExec(n *plangraph.Node) (*operator.NodeExec, bool) {
	x, ok := a.execs[n]
	return x, ok
}

// DropExec discards a node's runtime state (eviction, §6.3), releasing its
// ledger account and remembering the key so a later re-creation is
// classified as a revival.
func (a *ATC) DropExec(n *plangraph.Node) {
	if x, ok := a.execs[n]; ok {
		a.ledger.Release(x.Account())
		// The key set only feeds the revival-classification metric; bound it
		// so a long-lived server with an ever-diverse query stream cannot
		// grow it without limit (classification turns best-effort past the
		// cap).
		if len(a.evictedKeys) >= maxEvictedKeys {
			a.evictedKeys = map[string]bool{}
		}
		a.evictedKeys[n.Key] = true
	}
	delete(a.execs, n)
	delete(a.ras, n)
}

// SpillNode serializes a node's retained state — log rows, stream position,
// access modules, all epoch-stamped — to the disk tier, reporting whether a
// segment was written. The caller evicts the node afterwards either way;
// with a segment on disk the next revival of the same expression restores
// instead of re-paying source reads.
func (a *ATC) SpillNode(n *plangraph.Node) bool {
	if a.spill == nil {
		return false
	}
	x, ok := a.execs[n]
	if !ok {
		return false
	}
	snap := snapshotNode(n, x)
	rows, bytes, err := a.spill.Write(snap)
	if err != nil {
		// Local disk failed; fall back to discard eviction.
		return false
	}
	a.Env.Metrics.AddSpillWrite(int64(rows), bytes)
	return true
}

// Revive brings a node fully live for the given epoch: parents are revived
// first, each module is topped up with rows the node missed while parked (or
// never saw, if freshly grafted), and the node's historical outputs are
// recovered into its log. It returns the node's exec.
func (a *ATC) Revive(n *plangraph.Node, epoch int) (*operator.NodeExec, error) {
	x, err := a.Exec(n)
	if err != nil {
		return nil, err
	}
	if n.Kind != plangraph.Join {
		// Sources are always consistent: their log mirrors their reads.
		return x, nil
	}
	if x.HistoryComplete && a.modulesCurrent(x) {
		return x, nil
	}
	// Parents first (recursively restoring their own spilled state), so a
	// spilled segment for this node can be checked against live parent logs.
	for _, e := range n.Inputs {
		if e.Probe {
			// Random-access inputs have no stream history to replay; probes
			// re-fetch (cached) on demand.
			if _, err := a.Exec(e.From); err != nil {
				return nil, err
			}
			continue
		}
		if _, err := a.Revive(e.From, epoch); err != nil {
			return nil, err
		}
	}
	a.restoreJoin(n, x)
	for _, e := range n.Inputs {
		if e.Probe {
			continue
		}
		px := a.execs[e.From]
		// Top up this module with the parent's logged rows it has missed.
		have := x.Module(e.InputIdx).Len()
		rows, epochs := px.Log.RowsFrom(have)
		x.PreloadModule(e.InputIdx, rows, epochs)
	}
	x.RecoverHistory(a.Env, epoch)
	// Re-establish live bindings parent -> node.
	for _, e := range n.Inputs {
		px := a.execs[e.From]
		px.AddConsumer(e, x)
	}
	x.HistoryComplete = true
	return x, nil
}

// restoreJoin reinstalls a re-grafted join node's spilled state — module
// rows and output log, original epoch stamps — when a segment exists and is
// structurally consistent with the new graft: same input partition (producer
// keys, atom maps, probe flags, in order) and no parent log shorter than the
// module rows it once fed. A mismatch (the optimizer re-partitioned the
// expression, or a parent was discarded and restarted) drops the segment and
// falls back to normal revival; reinstalling across it would fabricate or
// duplicate join state.
func (a *ATC) restoreJoin(n *plangraph.Node, x *operator.NodeExec) {
	if seg, ok := a.takeStaged(n.Key); ok {
		snap := seg.snap
		// The gate: the node must be empty (state derived since staging makes
		// the segment stale) and the segment must match the node's current
		// input structure and parent logs. A failed gate drops the segment —
		// the state re-derives by source replay, never installs wrong.
		if x.Log.Len() > 0 || x.StateSize() > 0 || !a.joinSnapshotConsistent(n, snap) {
			a.Env.Metrics.AddMigrationDrop()
			a.noteSourceRevival(n.Key)
			return
		}
		delete(a.evictedKeys, n.Key)
		for i := range snap.Modules {
			x.ImportModuleRows(i, snap.Modules[i].Parts, snap.Modules[i].Epochs)
		}
		x.ImportLog(snap.LogRows, snap.LogEpochs)
		a.Env.ChargeSpillRead(snap.RowCount(), int64(seg.bytes))
		a.Env.Metrics.AddMigrationRestore()
		return
	}
	if a.spill == nil || !a.spill.Has(n.Key) {
		if x.Log.Len() == 0 && x.StateSize() == 0 {
			a.noteSourceRevival(n.Key)
		}
		return
	}
	if x.Log.Len() > 0 || x.StateSize() > 0 {
		return // live state present; the segment is stale
	}
	snap, rows, bytes, err := a.spill.Take(n.Key)
	if err != nil || snap == nil || !a.joinSnapshotConsistent(n, snap) {
		a.spill.NoteDropped()
		a.noteSourceRevival(n.Key)
		return
	}
	delete(a.evictedKeys, n.Key)
	for i := range snap.Modules {
		x.ImportModuleRows(i, snap.Modules[i].Parts, snap.Modules[i].Epochs)
	}
	x.ImportLog(snap.LogRows, snap.LogEpochs)
	a.Env.ChargeSpillRead(rows, bytes)
	a.Env.Metrics.AddRevivalFromSpill()
}

// joinSnapshotConsistent verifies a spilled join segment still matches the
// node's current input structure and its parents' logs.
func (a *ATC) joinSnapshotConsistent(n *plangraph.Node, snap *state.NodeSnapshot) bool {
	if snap.Kind != int(plangraph.Join) || len(snap.Modules) != len(n.Inputs) {
		return false
	}
	for i, e := range n.Inputs {
		m := &snap.Modules[i]
		if m.ProducerKey != e.From.Key || m.Probe != e.Probe || !slices.Equal(m.Coverage, e.AtomMap) {
			return false
		}
		if !e.Probe {
			px, ok := a.execs[e.From]
			if !ok || px.Log.Len() < len(m.Parts) {
				return false
			}
		}
	}
	nAtoms := len(n.Expr.Atoms)
	for _, r := range snap.LogRows {
		if r.Arity() != nAtoms {
			return false
		}
	}
	for i := range snap.Modules {
		for _, ps := range snap.Modules[i].Parts {
			if len(ps) != nAtoms {
				return false
			}
		}
	}
	return true
}

func (a *ATC) modulesCurrent(x *operator.NodeExec) bool {
	for _, e := range x.Node.Inputs {
		if e.Probe {
			continue
		}
		px, ok := a.execs[e.From]
		if !ok || x.Module(e.InputIdx).Len() < px.Log.Len() {
			return false
		}
	}
	return true
}

// AttachCQ wires a conjunctive query's endpoint sink to its terminal node.
func (a *ATC) AttachCQ(cqID string, node *operator.NodeExec, sink *operator.EndpointSink) {
	node.AddSink(sink)
	a.structMu.Lock()
	a.attach[cqID] = attachment{node: node, sink: sink}
	a.structMu.Unlock()
}

// detachEndpoint atomically claims a CQ's attachment and removes its graph
// endpoint. The mutex makes concurrent unlinks from different scheduling
// components safe; they operate on distinct keys, so locking changes no
// outcome, only prevents the map races.
func (a *ATC) detachEndpoint(cqID string) (attachment, bool) {
	a.structMu.Lock()
	defer a.structMu.Unlock()
	at, ok := a.attach[cqID]
	if !ok {
		return attachment{}, false
	}
	delete(a.attach, cqID)
	a.Graph.RemoveEndpoint(cqID)
	return at, true
}

// UnlinkCQ detaches a finished or pruned conjunctive query (§6.3) and parks
// the plan segment that fed only it.
func (a *ATC) UnlinkCQ(cqID string) {
	at, ok := a.detachEndpoint(cqID)
	if !ok {
		return
	}
	at.node.RemoveSink(at.sink)
	// The detached sink receives no further offers: close its ledger account
	// (remaining buffered candidates stay eligible for emission but are no
	// longer resident state the budget can reclaim) and release its entry's
	// duplicate-elimination set (§6.3).
	a.ledger.Release(at.sink.Entry.Account())
	at.sink.Entry.DropSeen()
	a.park(at.node)
}

// SinkStateRows reports the resident state of all attached rank-merge
// endpoints — buffered candidates plus duplicate-set entries — for the §6.3
// memory accounting. Unlinked CQs have already released both.
func (a *ATC) SinkStateRows() int {
	a.structMu.Lock()
	defer a.structMu.Unlock()
	n := 0
	for _, at := range a.attach {
		n += at.sink.Entry.BufferLen() + at.sink.Entry.SeenLen()
	}
	return n
}

// park removes execution bindings backwards from a workless node until a
// split (a node with remaining live consumers or sinks) is reached. State is
// retained; historyComplete is cleared so a future revive tops the node up.
func (a *ATC) park(x *operator.NodeExec) {
	if x.HasWork() || x.Node.Kind != plangraph.Join {
		return
	}
	x.HistoryComplete = false
	// A parked node runs no cascades until revival: hand its pooled scratch
	// (free-listed part vectors, batch buffers) back and settle the ledger's
	// scratch dimension so idle segments hold no hidden memory.
	x.ReleaseScratch()
	for _, e := range x.Node.Inputs {
		px, ok := a.execs[e.From]
		if !ok {
			continue
		}
		px.RemoveConsumerEdge(e)
		a.park(px)
	}
}

// RunRound performs one round-robin pass (§4.2): every unfinished rank-merge
// advances — emitting and activating freely — until it either performs one
// (blocking) source read or finishes. Reading from each operator's preferred
// stream once per round "has the same outcome as a voting strategy where the
// input stream with the highest number of tuple requests gets read the most"
// and prevents source starvation (§4.2). It reports whether any merge is
// still unfinished.
//
// With the parallel executor enabled (EnableParallel) the round is
// component-scheduled: the active merges partition into connected components
// of the shared plan graph, each component's merges advance in admission
// order on a worker, and a barrier closes the round. Components share no
// runtime state, so the rows that flow — and therefore result digests and
// work counters — are identical at any worker count.
func (a *ATC) RunRound() bool {
	if a.par != nil && a.par.workers > 1 {
		return a.runRoundParallel()
	}
	return a.serialRound()
}

// serialRound drives every active merge on the calling goroutine against
// the global environment — the serial engine's round, also used by the
// parallel executor when the graph holds a single component.
func (a *ATC) serialRound() bool {
	live := a.active[:0]
	for _, m := range a.active {
		if m.Done {
			continue
		}
		a.driveMerge(m, a.Env)
		if !m.Done {
			live = append(live, m)
		}
	}
	a.compactActive(live)
	return len(a.active) > 0
}

// compactActive installs the surviving merges, zeroing the tail for GC and
// invalidating the component cache when anything finished.
func (a *ATC) compactActive(live []*MergeState) {
	if len(live) != len(a.active) {
		a.compDirty = true
	}
	for i := len(live); i < len(a.active); i++ {
		a.active[i] = nil
	}
	a.active = live
}

// driveMergeMaxSteps defensively bounds one merge's scheduling round.
const driveMergeMaxSteps = 1 << 22

// SetDriveBound overrides the defensive per-round step bound (<= 0 restores
// the default). It exists so tests can exercise the non-convergence failure
// path deterministically; production code never needs it.
func (a *ATC) SetDriveBound(n int) { a.driveBound = n }

func (a *ATC) driveLimit() int {
	if a.driveBound > 0 {
		return a.driveBound
	}
	return driveMergeMaxSteps
}

// driveMerge advances one rank-merge until it reads a tuple or finishes,
// charging work to env (the global environment in serial mode, the
// component's environment under the parallel executor). A round that does
// not converge — or an operator panic — fails the merge instead of taking
// down the process: the error lands in MergeState.Err and the serving layer
// returns it as a failed search.
func (a *ATC) driveMerge(m *MergeState, env *operator.Env) {
	if err := a.advanceMerge(m, env); err != nil {
		a.failMerge(m, env, err)
	}
}

// advanceMerge is driveMerge's happy path; it converts panics from the
// operator stack into errors so a poisoned query cannot kill a worker.
func (a *ATC) advanceMerge(m *MergeState, env *operator.Env) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("atc: driving %s: panic: %v", m.RM.UQ.ID, r)
		}
	}()
	limit := a.driveLimit()
	for i := 0; i < limit; i++ {
		step := m.RM.Advance(env)
		switch step.Kind {
		case operator.StepDone:
			m.Done = true
			m.Finished = env.Clock.Now()
			for _, e := range m.RM.Entries {
				a.UnlinkCQ(e.CQ.ID)
			}
			return nil
		case operator.StepEmitted:
			for _, id := range step.PrunedCQs {
				a.UnlinkCQ(id)
			}
		case operator.StepActivated:
			// Bookkeeping only; continue advancing.
		case operator.StepRead:
			if step.Source.ReadOne(env, a.epoch) {
				return nil // one read per merge per round
			}
			// Exhausted: let the merge reclassify and pick again.
		}
	}
	return fmt.Errorf("atc: scheduling round did not converge for %s after %d steps",
		m.RM.UQ.ID, limit)
}

// failMerge marks a merge failed and parks whatever of its plan segments can
// still be detached cleanly.
func (a *ATC) failMerge(m *MergeState, env *operator.Env, err error) {
	m.Err = err
	m.Done = true
	m.Finished = env.Clock.Now()
	// Best-effort unlink: the failure may have left operator state
	// inconsistent, and cleanup must not re-panic the worker. Each entry is
	// recovered individually so one poisoned segment cannot strand the
	// remaining entries' attachments, sinks and ledger accounts.
	for _, e := range m.RM.Entries {
		a.unlinkRecovering(e.CQ.ID)
	}
}

// unlinkRecovering is UnlinkCQ with panics contained to the one entry.
func (a *ATC) unlinkRecovering(cqID string) {
	defer func() { _ = recover() }()
	a.UnlinkCQ(cqID)
}

// AllDone reports whether every admitted user query has finished.
func (a *ATC) AllDone() bool {
	for _, m := range a.active {
		if !m.Done {
			return false
		}
	}
	return true
}
