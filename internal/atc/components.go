package atc

import (
	"repro/internal/operator"
	"repro/internal/plangraph"
)

// Component scheduling (the intra-shard parallel executor's partition).
//
// Two rank-merges interact only through shared runtime state: a stream both
// read, a join whose modules both fill, a probe cache both hit. All of that
// state hangs off plan-graph nodes, and a merge can only ever touch nodes
// reachable from its conjunctive queries' terminal nodes through input
// edges. So the merges partition into connected components of the bipartite
// merge↔node incidence: merges whose footprints transitively intersect form
// one component, and components are race-free units — no node, stream, probe
// cache, log, module, or endpoint sink is visible to two of them.
//
// The index is maintained incrementally: a merge's footprint is computed
// once at submission (Submit/AddMerge walks the closure, O(|segment|)), and
// the partition itself is cached and rebuilt — one union-find pass over the
// active footprints — only after an event that can change it (a submission,
// a completed or canceled merge, a Forget). Footprints are deliberately
// conservative: pruning a CQ mid-flight does not shrink its merge's
// footprint, because the merge's entries keep reading their threshold
// sources until the whole merge completes. Over-approximation can only cost
// parallelism, never correctness.

// mergeFootprint walks the plan segments feeding a rank-merge and returns
// the keys of every node its execution can touch: the input-edge closure of
// each CQ's terminal node, plus each entry's threshold-group sources (always
// inside that closure for well-formed plans; included defensively).
func (a *ATC) mergeFootprint(rm *operator.RankMerge) []string {
	seen := map[*plangraph.Node]bool{}
	var keys []string
	var walk func(n *plangraph.Node)
	walk = func(n *plangraph.Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		keys = append(keys, n.Key)
		for _, e := range n.Inputs {
			walk(e.From)
		}
	}
	a.structMu.Lock()
	for _, e := range rm.Entries {
		if at, ok := a.attach[e.CQ.ID]; ok {
			walk(at.node.Node)
		}
	}
	a.structMu.Unlock()
	for _, e := range rm.Entries {
		for _, g := range e.Groups {
			walk(g.Source.Node)
		}
	}
	return keys
}

// MergeNodeKeys returns a copy of a merge's captured footprint (tests and
// diagnostics), or nil for an unknown user query.
func (a *ATC) MergeNodeKeys(uqID string) []string {
	m := a.byUQ[uqID]
	if m == nil {
		return nil
	}
	return append([]string(nil), m.nodeKeys...)
}

// Components returns the current partition of the unfinished merges into
// race-free scheduling components, in deterministic order: components are
// ordered by their earliest member's admission position, and members within
// a component keep admission order — exactly the serial round's relative
// order restricted to the component. Done merges awaiting compaction (a
// cancellation between rounds) are excluded: they drive nothing, so they
// must not count as parallelism or fork a clock.
func (a *ATC) Components() [][]*MergeState {
	if !a.compDirty && a.comps != nil {
		return a.comps
	}
	live := make([]*MergeState, 0, len(a.active))
	for _, m := range a.active {
		if !m.Done {
			live = append(live, m)
		}
	}
	a.comps = partitionMerges(live)
	a.compDirty = false
	return a.comps
}

// ComponentIDs renders the partition as user-query id groups (tests, stats).
func (a *ATC) ComponentIDs() [][]string {
	var out [][]string
	for _, comp := range a.Components() {
		ids := make([]string, len(comp))
		for i, m := range comp {
			ids[i] = m.RM.UQ.ID
		}
		out = append(out, ids)
	}
	return out
}

// partitionMerges is the from-scratch union-find over merge footprints. It
// is the whole definition of the component invariant; the incremental index
// is just this, cached (pinned by TestComponentIndexMatchesScratch).
func partitionMerges(merges []*MergeState) [][]*MergeState {
	parent := make([]int, len(merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	owner := map[string]int{} // node key -> first merge touching it
	for i, m := range merges {
		for _, k := range m.nodeKeys {
			if o, ok := owner[k]; ok {
				ra, rb := find(i), find(o)
				if ra != rb {
					// Root at the smaller admission index so component
					// identity is stable and ordered.
					if ra < rb {
						parent[rb] = ra
					} else {
						parent[ra] = rb
					}
				}
			} else {
				owner[k] = i
			}
		}
	}
	groups := map[int]int{} // root -> output slot
	var out [][]*MergeState
	for i, m := range merges {
		r := find(i)
		slot, ok := groups[r]
		if !ok {
			slot = len(out)
			groups[r] = slot
			out = append(out, nil)
		}
		out[slot] = append(out[slot], m)
	}
	return out
}
