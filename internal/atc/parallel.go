package atc

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/plangraph"
	"repro/internal/simclock"
	"repro/internal/source"
)

// The intra-shard parallel executor.
//
// A shard's shared plan graph usually holds several independent subgraphs at
// once — unrelated topics whose queries share nothing. The serial ATC drives
// all of them on one goroutine, so a shard uses one core no matter how many
// independent components it holds. EnableParallel schedules each component's
// round on a worker pool instead, with a barrier per global round.
//
// Determinism contract (the reason this executor can replace the serial one
// under the bench trajectory's digest gates):
//
//   - components share no runtime state (see components.go), so which rows
//     flow is decided entirely inside a component;
//   - within a component, merges advance in admission order — the serial
//     round's relative order restricted to the component;
//   - every remote-operation delay is drawn from a per-source-node model
//     seeded by the node's key, so the i'th read of a node costs the same
//     whatever the worker interleaving;
//   - each component's round runs on a fork of the environment with a
//     private virtual clock; at the barrier the global clock advances over
//     the component end times in fixed component order;
//   - cross-component aggregation outside the round — eviction, catalog
//     sync, endpoint draining — already runs on the executor goroutine
//     between rounds, in plan-graph order.
//
// Result digests and work counters are therefore byte-identical at any
// worker count > 1, and identical to the serial engine's (whose delay
// sequence differs, but delays never influence which rows flow — only the
// virtual timeline). -workers 1 bypasses all of this and is the serial
// engine, byte for byte.
type parallelState struct {
	workers int
	seed    uint64
	pool    *workerPool

	// mu guards delays: models are created lazily, usually at admission but
	// possibly from a worker on first charge of a node.
	mu     sync.RWMutex
	delays map[string]*simclock.DelayModel

	// preopened holds streams opened concurrently at admission (PreopenStreams),
	// consumed by Exec. Executor-goroutine confined.
	preopened map[*plangraph.Node]*source.Stream

	stats parStats
}

// parStats accumulates scheduling statistics for the serving stats surface.
type parStats struct {
	rounds       atomic.Int64
	parRounds    atomic.Int64
	stolenRounds atomic.Int64
	stolenMerges atomic.Int64
	busyNS       atomic.Int64
	wallNS       atomic.Int64
	compHist     metrics.SizeHist
}

// ParallelStats reports the executor's scheduling behaviour for one shard.
type ParallelStats struct {
	// Workers is the configured pool size (0 when the executor is serial).
	Workers int
	// Rounds counts scheduling rounds since start; ParallelRounds those that
	// dispatched two or more components to the pool.
	Rounds         int64
	ParallelRounds int64
	// BusyNS sums worker time spent driving components in parallel rounds;
	// WallNS sums those rounds' wall time. Utilization is
	// BusyNS/(Workers×WallNS) — how much of the pool the shard kept busy.
	BusyNS      int64
	WallNS      int64
	Utilization float64
	// StolenRounds counts rounds scheduled at merge granularity: fewer live
	// components than workers, so a dominating component's per-merge work was
	// split across the idle workers (dependency-ordered wherever footprints
	// intersect, so the rows that flow are unchanged). StolenMerges totals
	// the merges those rounds dispatched.
	StolenRounds int64
	StolenMerges int64
	// Components is the distribution of per-round component counts — the
	// round-parallelism histogram (Dist[k] = rounds that had k components).
	Components metrics.SizeStats
}

// EnableParallel turns on component-scheduled rounds on a pool of the given
// size. Must be called before any execution state exists; workers <= 1 is a
// no-op (the serial engine). The seed feeds the per-source-node delay
// models.
func (a *ATC) EnableParallel(workers int, seed uint64) {
	if workers <= 1 || a.par != nil {
		return
	}
	p := &parallelState{
		workers:   workers,
		seed:      seed,
		delays:    map[string]*simclock.DelayModel{},
		preopened: map[*plangraph.Node]*source.Stream{},
	}
	p.pool = newWorkerPool(workers)
	a.par = p
	base := a.Env.Delays
	a.Env.DelayFor = func(nodeKey string) *simclock.DelayModel {
		return p.delayFor(nodeKey, base)
	}
}

// Workers returns the parallel executor's pool size, or 1 for the serial
// engine. The state manager uses it to bound admission-side concurrency
// (group optimization, stream pre-opening).
func (a *ATC) Workers() int {
	if a.par == nil {
		return 1
	}
	return a.par.workers
}

// Close releases the parallel executor's worker pool and drops any
// pre-opened streams an aborted admission left behind. It is safe and a
// no-op on a serial controller, and idempotent.
func (a *ATC) Close() {
	if a.par != nil {
		a.par.pool.close()
		a.par.preopened = map[*plangraph.Node]*source.Stream{}
	}
}

// ParallelStats snapshots the executor's scheduling statistics (zero value
// when the executor is serial).
func (a *ATC) ParallelStats() ParallelStats {
	if a.par == nil {
		return ParallelStats{}
	}
	st := ParallelStats{
		Workers:        a.par.workers,
		Rounds:         a.par.stats.rounds.Load(),
		ParallelRounds: a.par.stats.parRounds.Load(),
		StolenRounds:   a.par.stats.stolenRounds.Load(),
		StolenMerges:   a.par.stats.stolenMerges.Load(),
		BusyNS:         a.par.stats.busyNS.Load(),
		WallNS:         a.par.stats.wallNS.Load(),
		Components:     a.par.stats.compHist.Snapshot(),
	}
	if st.WallNS > 0 && st.Workers > 0 {
		st.Utilization = float64(st.BusyNS) / (float64(st.Workers) * float64(st.WallNS))
	}
	return st
}

// delayFor resolves (creating on first use) the delay model of one source
// node: the engine's delay constants with a private RNG seeded by the node
// key, so a node's k'th remote operation costs the same at any worker count
// and any round interleaving.
func (p *parallelState) delayFor(nodeKey string, base *simclock.DelayModel) *simclock.DelayModel {
	p.mu.RLock()
	dm := p.delays[nodeKey]
	p.mu.RUnlock()
	if dm != nil {
		return dm
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if dm := p.delays[nodeKey]; dm != nil {
		return dm
	}
	h := fnv.New64a()
	h.Write([]byte(nodeKey))
	dm = base.WithRNG(dist.New(p.seed + 2*h.Sum64() + 1))
	p.delays[nodeKey] = dm
	return dm
}

// takePreopened consumes a stream opened ahead of time by PreopenStreams.
func (a *ATC) takePreopened(n *plangraph.Node) *source.Stream {
	if a.par == nil {
		return nil
	}
	st := a.par.preopened[n]
	if st != nil {
		delete(a.par.preopened, n)
	}
	return st
}

// PreopenStreams opens the given stream-source nodes' remote streams
// concurrently (bounded by the worker count) and stashes them for Exec.
// Stream opening is embarrassingly parallel — each call materialises an
// independent pushed-down expression at its database — and on admission of
// a cold multi-source query it serializes an otherwise parallelizable
// round-trip per source. Serial controllers keep opening lazily in Exec;
// errors are reported in node order so failure behaviour is deterministic.
func (a *ATC) PreopenStreams(nodes []*plangraph.Node) error {
	if a.par == nil {
		return nil
	}
	var todo []*plangraph.Node
	seen := map[*plangraph.Node]bool{}
	for _, n := range nodes {
		if n == nil || n.Kind != plangraph.SourceStream || seen[n] {
			continue
		}
		seen[n] = true
		if _, ok := a.execs[n]; ok {
			continue
		}
		if _, ok := a.par.preopened[n]; ok {
			continue
		}
		todo = append(todo, n)
	}
	if len(todo) <= 1 {
		return nil // nothing to overlap; Exec opens on demand
	}
	type opened struct {
		st  *source.Stream
		err error
	}
	out := make([]opened, len(todo))
	sem := make(chan struct{}, a.par.workers)
	var wg sync.WaitGroup
	for i, n := range todo {
		wg.Add(1)
		go func(i int, n *plangraph.Node) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			db, err := a.Fleet.DB(n.DB)
			if err != nil {
				out[i] = opened{err: err}
				return
			}
			st, err := source.OpenStream(db, n.Expr)
			out[i] = opened{st: st, err: err}
		}(i, n)
	}
	wg.Wait()
	// Stash every successful open first — even when another node failed —
	// so a retried admission over the same plan nodes reuses them instead
	// of leaking the work; then report the first failure in node order.
	for i, n := range todo {
		if out[i].err == nil {
			a.par.preopened[n] = out[i].st
		}
	}
	for i, n := range todo {
		if out[i].err != nil {
			return fmt.Errorf("atc: preopen %s: %w", n.Key, out[i].err)
		}
	}
	return nil
}

// runRoundParallel is RunRound under the parallel executor: one barrier per
// global round, each component driven on a worker with a private clock fork.
func (a *ATC) runRoundParallel() bool {
	comps := a.Components()
	p := a.par
	p.stats.rounds.Add(1)
	p.stats.compHist.Observe(len(comps))

	merges := 0
	for _, c := range comps {
		merges += len(c)
	}
	if len(comps) >= 1 && len(comps) < p.workers && merges > len(comps) {
		// Fewer components than workers but more merges than components: the
		// per-component barrier would leave workers idle while a dominating
		// component drives its merges one by one. Steal at merge granularity
		// instead.
		return a.runRoundStealing(comps, merges)
	}

	if len(comps) <= 1 {
		// Zero or one component: no cross-component concurrency to exploit
		// this round. Drive on the caller (per-node delay models stay in
		// force — the delay discipline is engine-wide, not per-round).
		return a.serialRound()
	}

	roundStart := time.Now() //qsys:allow wallclock: wall busy/round stats for observability only; merge order and digests ride the virtual clock
	now := a.Env.Clock.Now()
	_, virtual := a.Env.Clock.(*simclock.Virtual)
	ends := make([]time.Duration, len(comps))
	var wg sync.WaitGroup
	for i, comp := range comps {
		i, comp := i, comp
		env := a.Env
		var clk *simclock.Virtual
		if virtual {
			// Component-local timeline: components run concurrently, so
			// none may observe another's clock advances mid-round. (A real
			// clock is shared — its sleeps overlap across workers, which is
			// exactly the live-serving semantics.)
			clk = simclock.NewVirtual(now)
			env = a.Env.ForComponent(clk)
		}
		wg.Add(1)
		p.pool.submit(func() {
			defer wg.Done()
			t0 := time.Now() //qsys:allow wallclock: wall busy/round stats for observability only; merge order and digests ride the virtual clock
			for _, m := range comp {
				if m.Done {
					continue
				}
				a.driveMerge(m, env)
			}
			p.stats.busyNS.Add(int64(time.Since(t0))) //qsys:allow wallclock: wall busy/round stats for observability only; merge order and digests ride the virtual clock
			if clk != nil {
				ends[i] = clk.Now()
			}
		})
	}
	wg.Wait()
	if virtual {
		// Fixed component order for the cross-component clock aggregation.
		// AdvanceTo makes the result the max of the component end times —
		// the round took as long as its slowest component, the others
		// overlapped — and the fixed order keeps every aggregate
		// deterministic by construction.
		for _, end := range ends {
			a.Env.Clock.AdvanceTo(end)
		}
	}
	p.stats.parRounds.Add(1)
	p.stats.wallNS.Add(int64(time.Since(roundStart))) //qsys:allow wallclock: wall busy/round stats for observability only; merge order and digests ride the virtual clock

	live := a.active[:0]
	for _, m := range a.active {
		if !m.Done {
			live = append(live, m)
		}
	}
	a.compactActive(live)
	return len(a.active) > 0
}

// mergeTask is one merge's slice of a stolen round. deps are the earlier
// tasks (admission order, same component) whose footprints intersect this
// merge's; done closes after end is recorded, so a dependent always observes
// its dependencies' end times.
type mergeTask struct {
	m    *MergeState
	deps []*mergeTask
	done chan struct{}
	end  time.Duration
}

// runRoundStealing is the merge-granularity round: component-aware work
// stealing for graphs whose component count cannot fill the pool.
//
// Correctness rests on the same footprint index the component partition is
// built from. Two merges can interact only through plan nodes both footprints
// contain, so each task depends on every earlier merge (admission order,
// necessarily in its own component — cross-component footprints never
// intersect) that shares a node with it. Dependency order restricted to any
// shared node is then exactly the serial round's admission order: the rows
// that flow, every per-node RNG draw sequence, and therefore result digests
// and work counters are unchanged. Merges that share nothing directly —
// members of one component connected only transitively — may genuinely
// overlap, which is the stolen parallelism.
//
// Each merge runs on a private virtual-clock fork starting at
// max(round start, its dependencies' end times); the barrier folds the ends
// into the global clock in fixed admission order. The round's virtual
// makespan can therefore undercut the component-serial schedule (disjoint
// merges overlap instead of queueing) — the timeline feeds only latency
// surfaces, never row flow or eviction (whose LastUse is an integer epoch).
//
// Deadlock-freedom: tasks enter the FIFO pool in admission order, so a
// task's dependencies are always dequeued before it. The earliest unfinished
// dequeued task has all dependencies finished (an unfinished dependency
// would itself be an earlier unfinished dequeued task), so some worker can
// always progress; blocked workers never exceed workers-1.
func (a *ATC) runRoundStealing(comps [][]*MergeState, merges int) bool {
	p := a.par
	roundStart := time.Now() //qsys:allow wallclock: wall busy/round stats for observability only; merge order and digests ride the virtual clock
	now := a.Env.Clock.Now()
	_, virtual := a.Env.Clock.(*simclock.Virtual)

	tasks := make([]*mergeTask, 0, merges)
	for _, comp := range comps {
		lastByKey := map[string]*mergeTask{}
		for _, m := range comp {
			t := &mergeTask{m: m, done: make(chan struct{})}
			depSeen := map[*mergeTask]bool{}
			for _, k := range m.nodeKeys {
				// Chaining through the key's latest earlier toucher is
				// enough: intermediate touchers depend on older ones
				// transitively, so per-node order is total.
				if prev := lastByKey[k]; prev != nil && !depSeen[prev] {
					depSeen[prev] = true
					t.deps = append(t.deps, prev)
				}
				lastByKey[k] = t
			}
			tasks = append(tasks, t)
		}
	}

	var wg sync.WaitGroup
	for _, t := range tasks {
		t := t
		wg.Add(1)
		p.pool.submit(func() {
			defer wg.Done()
			defer close(t.done)
			start := now
			for _, d := range t.deps {
				<-d.done
				if d.end > start {
					start = d.end
				}
			}
			t0 := time.Now() //qsys:allow wallclock: wall busy/round stats for observability only; merge order and digests ride the virtual clock
			env := a.Env
			var clk *simclock.Virtual
			if virtual {
				clk = simclock.NewVirtual(start)
				env = a.Env.ForComponent(clk)
			}
			if !t.m.Done {
				a.driveMerge(t.m, env)
			}
			p.stats.busyNS.Add(int64(time.Since(t0))) //qsys:allow wallclock: wall busy/round stats for observability only; merge order and digests ride the virtual clock
			if clk != nil {
				t.end = clk.Now()
			}
		})
	}
	wg.Wait()
	if virtual {
		for _, t := range tasks {
			a.Env.Clock.AdvanceTo(t.end)
		}
	}
	p.stats.parRounds.Add(1)
	p.stats.stolenRounds.Add(1)
	p.stats.stolenMerges.Add(int64(merges))
	p.stats.wallNS.Add(int64(time.Since(roundStart))) //qsys:allow wallclock: wall busy/round stats for observability only; merge order and digests ride the virtual clock

	live := a.active[:0]
	for _, m := range a.active {
		if !m.Done {
			live = append(live, m)
		}
	}
	a.compactActive(live)
	return len(a.active) > 0
}

// workerPool is a fixed set of goroutines executing submitted closures. It
// exists because rounds are frequent and small: spawning goroutines per
// round would cost more than many components' work.
type workerPool struct {
	tasks chan func()
	stop  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{tasks: make(chan func(), 4*n), stop: make(chan struct{})}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case f := <-p.tasks:
					f()
				case <-p.stop:
					return
				}
			}
		}()
	}
	return p
}

// submit enqueues a task; blocks only if the queue is full (workers drain it).
func (p *workerPool) submit(f func()) { p.tasks <- f }

// close stops the workers once all submitted rounds have completed. Only
// call between rounds (the executor owns the round lifecycle).
func (p *workerPool) close() {
	p.once.Do(func() {
		close(p.stop)
		p.wg.Wait()
	})
}
