package atc

import (
	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/state"
)

// Live topic migration (distributed serving tier). A migrating topic's
// retained plan segments leave the source shard as NodeSnapshots (the same
// structure the §6.3 disk tier serializes), travel encoded, and arrive here
// as *staged* segments: parked in memory, keyed by node key, and consumed by
// the exact revival paths — restoreStream / restoreJoin — that consume disk
// segments, behind the exact consistency gate. A staged segment that fails
// the gate is dropped and the node re-derives its state by source replay;
// migration can waste work, never fabricate it.

// maxStaged bounds the staged-segment table; a runaway migrator degrades to
// dropped handoffs (source replay) rather than unbounded memory.
const maxStaged = 4096

// stagedSeg is one migrated segment awaiting revival, with its wire size for
// the spill-read charge parity with disk revival.
type stagedSeg struct {
	snap  *state.NodeSnapshot
	bytes int
}

// Footprint returns the merge's plan-graph node keys (captured at admission,
// immutable). The serving layer uses it to map a topic to the plan segments a
// migration must carry.
func (m *MergeState) Footprint() []string {
	return append([]string(nil), m.nodeKeys...)
}

// AdvanceEpochTo raises the controller's epoch to at least e (no-op when
// already past). Importers call it with the source engine's epoch at export so
// every migrated row's stamp is strictly historical here — the next graft's
// BumpEpoch exceeds all imported stamps, keeping the §6.2 historical/live
// classification and joinFrom's epoch-based duplicate guard intact without
// rewriting stamps (relative order between imported rows must survive).
func (a *ATC) AdvanceEpochTo(e int) {
	if e > a.epoch {
		a.epoch = e
	}
}

// snapshotNode captures a node's retained state — log rows, stream position,
// access modules, all epoch-stamped — as a NodeSnapshot. Shared by the disk
// spill path (SpillNode) and the migration export path (ExportNode).
func snapshotNode(n *plangraph.Node, x *operator.NodeExec) *state.NodeSnapshot {
	snap := &state.NodeSnapshot{Key: n.Key, Kind: int(n.Kind)}
	if x.Stream != nil {
		snap.StreamPos = x.Stream.Pos()
	}
	snap.LogRows, snap.LogEpochs = x.Log.Export()
	if n.Kind == plangraph.Join {
		snap.Modules = make([]state.ModuleSnapshot, len(n.Inputs))
		for i, e := range n.Inputs {
			parts, epochs := x.Module(i).Export()
			snap.Modules[i] = state.ModuleSnapshot{
				ProducerKey: e.From.Key,
				Coverage:    append([]int(nil), e.AtomMap...),
				Probe:       e.Probe,
				Parts:       parts,
				Epochs:      epochs,
			}
		}
	}
	return snap
}

// ExportNode captures a node's retained state for migration, or nil when the
// node has no runtime state. The caller discards the node afterwards (the
// state now lives on the target shard) — via DropExec, not SpillNode, so the
// same rows never exist in both the migration stream and the disk tier.
func (a *ATC) ExportNode(n *plangraph.Node) *state.NodeSnapshot {
	x, ok := a.execs[n]
	if !ok {
		return nil
	}
	return snapshotNode(n, x)
}

// StageSegment parks a migrated segment for revival, reporting whether it was
// accepted. Staging refuses segments that could never be consumed or could
// conflict with live state: a stream node whose exec already exists had its
// one restore chance at exec creation, and any node with resident rows must
// keep them (the segment is stale relative to what the shard derived itself).
// A refused segment is simply not installed; the caller counts it dropped and
// the state re-derives from sources.
func (a *ATC) StageSegment(snap *state.NodeSnapshot, bytes int) bool {
	if snap == nil || len(a.staged) >= maxStaged {
		return false
	}
	if n := a.Graph.Node(snap.Key); n != nil {
		if x, ok := a.execs[n]; ok {
			if snap.Kind == int(plangraph.SourceStream) {
				return false
			}
			if x.Log.Len() > 0 || x.StateSize() > 0 {
				return false
			}
		}
	}
	if a.staged == nil {
		a.staged = map[string]stagedSeg{}
	}
	a.staged[snap.Key] = stagedSeg{snap: snap, bytes: bytes}
	return true
}

// takeStaged claims (removing) the staged segment for a node key.
func (a *ATC) takeStaged(key string) (stagedSeg, bool) {
	seg, ok := a.staged[key]
	if ok {
		delete(a.staged, key)
	}
	return seg, ok
}

// Staged reports how many migrated segments are parked awaiting revival.
func (a *ATC) Staged() int { return len(a.staged) }
