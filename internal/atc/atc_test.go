package atc_test

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/mqo"
	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/qsm"
	"repro/internal/relationdb"
	"repro/internal/remotedb"
	"repro/internal/scoring"
	"repro/internal/simclock"
	"repro/internal/tuple"
)

// harness builds a random three-relation star database A ⋈ B ⋈ C plus the
// full middleware stack, and runs queries through qsm+atc.
type harness struct {
	fleet *remotedb.Fleet
	cat   *catalog.Catalog
	env   *operator.Env
	graph *plangraph.Graph
	ctrl  *atc.ATC
	mgr   *qsm.Manager
}

func newHarness(t *testing.T, seed uint64, nA, nB, nC int, withScoreless bool) *harness {
	t.Helper()
	rng := dist.New(seed)
	store := relationdb.NewStore("db")
	cat := catalog.New()

	sa := tuple.NewSchema("A",
		tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
		tuple.Column{Name: "term", Type: tuple.KindString},
		tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
	)
	terms := []string{"x", "y"}
	var rows []*tuple.Tuple
	for i := 0; i < nA; i++ {
		rows = append(rows, tuple.New(sa, tuple.Int(int64(i)), tuple.String(terms[rng.Intn(2)]), tuple.Float(0.1+0.9*rng.Float64())))
	}
	relA := relationdb.NewRelation(sa, rows)
	store.Put(relA)
	cat.AddRelation("db", relA)

	var sb *tuple.Schema
	if withScoreless {
		sb = tuple.NewSchema("B",
			tuple.Column{Name: "aid", Type: tuple.KindInt},
			tuple.Column{Name: "cid", Type: tuple.KindInt},
		)
	} else {
		sb = tuple.NewSchema("B",
			tuple.Column{Name: "aid", Type: tuple.KindInt},
			tuple.Column{Name: "cid", Type: tuple.KindInt},
			tuple.Column{Name: "sim", Type: tuple.KindFloat, Score: true},
		)
	}
	rows = nil
	for i := 0; i < nB; i++ {
		vals := []tuple.Value{tuple.Int(int64(rng.Intn(nA))), tuple.Int(int64(rng.Intn(nC)))}
		if !withScoreless {
			vals = append(vals, tuple.Float(0.1+0.9*rng.Float64()))
		}
		rows = append(rows, tuple.New(sb, vals...))
	}
	relB := relationdb.NewRelation(sb, rows)
	store.Put(relB)
	cat.AddRelation("db", relB)

	sc := tuple.NewSchema("C",
		tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
		tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
	)
	rows = nil
	for i := 0; i < nC; i++ {
		rows = append(rows, tuple.New(sc, tuple.Int(int64(i)), tuple.Float(0.1+0.9*rng.Float64())))
	}
	relC := relationdb.NewRelation(sc, rows)
	store.Put(relC)
	cat.AddRelation("db", relC)

	env := &operator.Env{
		Clock:   simclock.NewVirtual(0),
		Delays:  simclock.DefaultDelays(dist.New(seed + 9)),
		Metrics: &metrics.Counters{},
	}
	graph := plangraph.New("")
	ctrl := atc.New(graph, env, remotedb.NewFleet(remotedb.New(store)))
	cm := costmodel.New(cat, costmodel.DefaultParams())
	mgr := qsm.New(graph, ctrl, cat, cm, qsm.ShareAll)
	return &harness{fleet: nil, cat: cat, env: env, graph: graph, ctrl: ctrl, mgr: mgr}
}

// starCQ builds A(id,sel?,_) ⋈ B(id,cid) ⋈ C(cid,_) with the given model.
func starCQ(id string, sel string, model *scoring.Model, withScoreless bool) *cq.CQ {
	termArg := cq.V(10)
	if sel != "" {
		termArg = cq.C(tuple.String(sel))
	}
	bArgs := []cq.Term{cq.V(0), cq.V(1)}
	if !withScoreless {
		bArgs = append(bArgs, cq.V(12))
	}
	return &cq.CQ{
		ID:   id,
		UQID: "U-" + id,
		Atoms: []*cq.Atom{
			{Rel: "A", DB: "db", Args: []cq.Term{cq.V(0), termArg, cq.V(11)}},
			{Rel: "B", DB: "db", Args: bArgs},
			{Rel: "C", DB: "db", Args: []cq.Term{cq.V(1), cq.V(13)}},
		},
		Model: model,
	}
}

// run submits one UQ and drives it to completion.
func (h *harness) run(t *testing.T, uq *cq.UQ) []operator.Result {
	t.Helper()
	_, err := h.mgr.Admit([]batcher.Submission{{At: h.env.Clock.Now(), UQ: uq}}, mqo.Config{K: uq.K})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	for h.ctrl.RunRound() {
	}
	h.mgr.SyncCatalog()
	for _, m := range h.ctrl.Merges() {
		if m.RM.UQ.ID == uq.ID {
			return m.RM.Results()
		}
	}
	t.Fatal("merge not found")
	return nil
}

// bruteTopK computes the reference top-k via exhaustive join + sort.
func bruteTopK(h *harness, q *cq.CQ, k int, store *relationdb.Store) []float64 {
	a := store.MustRelation("A")
	b := store.MustRelation("B")
	c := store.MustRelation("C")
	sel := ""
	if q.Atoms[0].Args[1].IsConst() {
		sel = q.Atoms[0].Args[1].Const.AsString()
	}
	var scores []float64
	for _, rb := range b.Rows() {
		for _, ra := range a.Lookup(0, rb.Val(0)) {
			if sel != "" && ra.Val(1).AsString() != sel {
				continue
			}
			for _, rc := range c.Lookup(0, rb.Val(1)) {
				scores = append(scores, q.Model.Score([]float64{ra.Score(), rb.Score(), rc.Score()}))
			}
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

// TestTopKMatchesBruteForce is the core correctness property: for random
// databases, random scoring models and both source modes (streamed and
// probed B), the pipeline's top-k equals exhaustive evaluation.
func TestTopKMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		seed := uint64(100 + trial)
		withScoreless := trial%2 == 0
		nA, nB, nC := 30+trial*5, 80+trial*10, 25+trial*3

		var model *scoring.Model
		switch trial % 3 {
		case 0:
			model = scoring.QSystem(0.5, []float64{1, 1, 0.9})
		case 1:
			model = scoring.Discover(3)
		default:
			model = scoring.BANKS(0.7, []float64{1, 0.8, 1.2}, 0.4)
		}
		sel := ""
		if trial%4 < 2 {
			sel = "x"
		}
		k := 5 + trial*3

		// Rebuild the same store for the brute-force reference.
		ref := newHarness(t, seed, nA, nB, nC, withScoreless)
		q := starCQ(fmt.Sprintf("CQ%d", trial), sel, model, withScoreless)
		uq := &cq.UQ{ID: "U-" + q.ID, K: k, CQs: []*cq.CQ{q}}
		got := ref.run(t, uq)

		// Extract the reference store back out of the harness's controller
		// is awkward; rebuild data identically instead.
		h2 := newHarness(t, seed, nA, nB, nC, withScoreless)
		store := storeOf(t, h2)
		want := bruteTopK(h2, q, k, store)

		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i]) > 1e-9 {
				t.Fatalf("trial %d: rank %d score %v, want %v", trial, i+1, got[i].Score, want[i])
			}
			if i > 0 && got[i].Score > got[i-1].Score+1e-12 {
				t.Fatalf("trial %d: results out of order at %d", trial, i)
			}
		}
	}
}

// storeOf rebuilds the harness's store (the harness hides it; data generation
// is deterministic by seed so an identical copy suffices for reference
// computations — this helper just re-derives it).
func storeOf(t *testing.T, h *harness) *relationdb.Store {
	t.Helper()
	// The harness registered stats in its catalog; rebuild a store from the
	// catalog's schemas is impossible (no rows). Instead the harness keeps
	// the fleet inside the controller; easiest is to re-run generation. To
	// avoid drift, newHarness is deterministic — so capture via the exported
	// fleet on the controller.
	return h.ctrl.Fleet.MustDB("db").Store()
}

// TestSharedSubexpressionAgreement: two users with different scoring models
// share subexpressions; both must get the same answers as isolated runs.
func TestSharedSubexpressionAgreement(t *testing.T) {
	seed := uint64(42)
	q1 := starCQ("CQ1", "x", scoring.QSystem(0.2, []float64{1, 1, 1}), false)
	q2 := starCQ("CQ2", "x", scoring.Discover(3), false)
	q2.UQID = "U-CQ2"

	// Shared run: both user queries admitted together.
	shared := newHarness(t, seed, 40, 120, 30, false)
	uq1 := &cq.UQ{ID: "U-CQ1", K: 10, CQs: []*cq.CQ{q1}}
	uq2 := &cq.UQ{ID: "U-CQ2", K: 10, CQs: []*cq.CQ{q2}}
	_, err := shared.mgr.Admit([]batcher.Submission{
		{At: 0, UQ: uq1}, {At: 0, UQ: uq2},
	}, mqo.Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for shared.ctrl.RunRound() {
	}
	sharedRes := map[string][]operator.Result{}
	for _, m := range shared.ctrl.Merges() {
		sharedRes[m.RM.UQ.ID] = m.RM.Results()
	}

	// Isolated runs.
	for _, uq := range []*cq.UQ{uq1, uq2} {
		solo := newHarness(t, seed, 40, 120, 30, false)
		cp := uq.CQs[0].Clone()
		cp.ID += "-solo"
		soloUQ := &cq.UQ{ID: uq.ID + "-solo", K: uq.K, CQs: []*cq.CQ{cp}}
		got := solo.run(t, soloUQ)
		want := sharedRes[uq.ID]
		if len(got) != len(want) {
			t.Fatalf("%s: isolated %d results vs shared %d", uq.ID, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("%s: rank %d isolated %v vs shared %v", uq.ID, i, got[i].Score, want[i].Score)
			}
			if got[i].Row.Identity() != want[i].Row.Identity() {
				t.Fatalf("%s: rank %d rows differ", uq.ID, i)
			}
		}
	}
}

// TestGraftReuseEquivalence: a query admitted into a warm graph (after other
// queries ran) must return exactly what it returns cold, while consuming
// fewer source tuples.
func TestGraftReuseEquivalence(t *testing.T) {
	seed := uint64(7)
	warm := newHarness(t, seed, 50, 150, 40, false)
	first := starCQ("CQ1", "", scoring.QSystem(0.1, []float64{1, 1, 1}), false)
	warm.run(t, &cq.UQ{ID: "U-CQ1", K: 15, CQs: []*cq.CQ{first}})
	consumedAfterFirst := warm.env.Metrics.Snapshot().TuplesConsumed()

	// The same structure under a different user's scoring coefficients — the
	// §2.2 scenario; its plan matches the warm graph node for node.
	second := starCQ("CQ2", "", scoring.QSystem(0.3, []float64{0.9, 1, 1}), false)
	warm.env.Clock.Advance(time.Second)
	gotWarm := warm.run(t, &cq.UQ{ID: "U-CQ2", K: 15, CQs: []*cq.CQ{second}})
	warmDelta := warm.env.Metrics.Snapshot().TuplesConsumed() - consumedAfterFirst

	cold := newHarness(t, seed, 50, 150, 40, false)
	secondCold := starCQ("CQ2", "", scoring.QSystem(0.3, []float64{0.9, 1, 1}), false)
	gotCold := cold.run(t, &cq.UQ{ID: "U-CQ2", K: 15, CQs: []*cq.CQ{secondCold}})
	coldTotal := cold.env.Metrics.Snapshot().TuplesConsumed()

	if len(gotWarm) != len(gotCold) {
		t.Fatalf("warm %d results vs cold %d", len(gotWarm), len(gotCold))
	}
	for i := range gotWarm {
		if math.Abs(gotWarm[i].Score-gotCold[i].Score) > 1e-9 || gotWarm[i].Row.Identity() != gotCold[i].Row.Identity() {
			t.Fatalf("rank %d differs warm vs cold", i)
		}
	}
	if warmDelta >= coldTotal {
		t.Errorf("reuse saved nothing: warm delta %d vs cold %d", warmDelta, coldTotal)
	}
	t.Logf("warm delta %d vs cold %d tuples", warmDelta, coldTotal)

	// Duplicates must not appear when recovered state merges with live rows.
	for _, m := range warm.ctrl.Merges() {
		for _, e := range m.RM.Entries {
			if d := e.Duplicates(); d != 0 {
				t.Errorf("entry %s dropped %d duplicates", e.CQ.ID, d)
			}
		}
	}
}

// TestEpochRecoveryExactness: rows recovered from pre-epoch state plus live
// rows must equal a fresh full evaluation (no missing all-old combinations).
func TestEpochRecoveryExactness(t *testing.T) {
	seed := uint64(21)
	h := newHarness(t, seed, 40, 100, 30, false)
	// First query reads streams partway (small k).
	q1 := starCQ("CQ1", "", scoring.QSystem(0, []float64{1, 1, 1}), false)
	h.run(t, &cq.UQ{ID: "U-CQ1", K: 3, CQs: []*cq.CQ{q1}})

	// Second identical-shape query with large k must see everything.
	q2 := starCQ("CQ2", "", scoring.QSystem(0, []float64{1, 1, 1}), false)
	got := h.run(t, &cq.UQ{ID: "U-CQ2", K: 100000, CQs: []*cq.CQ{q2}})

	store := h.ctrl.Fleet.MustDB("db").Store()
	want := bruteTopK(h, q2, 1<<30, store)
	if len(got) != len(want) {
		t.Fatalf("recovered run returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Score-want[i]) > 1e-9 {
			t.Fatalf("rank %d score %v, want %v", i, got[i].Score, want[i])
		}
	}
}

// TestMergeIndexAndForget: merges are findable by user-query id in O(1),
// completed ones can be forgotten, and the compacting active list keeps
// RunRound from rescanning history.
func TestMergeIndexAndForget(t *testing.T) {
	h := newHarness(t, 77, 40, 90, 30, false)
	model := scoring.QSystem(0.5, []float64{1, 1, 0.9})
	q := starCQ("CQidx", "x", model, false)
	uq := &cq.UQ{ID: "U-CQidx", K: 5, CQs: []*cq.CQ{q}}

	if h.ctrl.MergeByUQ(uq.ID) != nil {
		t.Fatal("index populated before admission")
	}
	if _, err := h.mgr.Admit([]batcher.Submission{{At: 0, UQ: uq}}, mqo.Config{K: uq.K}); err != nil {
		t.Fatal(err)
	}
	m := h.ctrl.MergeByUQ(uq.ID)
	if m == nil || m.RM.UQ.ID != uq.ID {
		t.Fatal("MergeByUQ did not find the admitted query")
	}

	// Forget refuses while unfinished.
	h.ctrl.Forget(uq.ID)
	if h.ctrl.MergeByUQ(uq.ID) == nil {
		t.Fatal("Forget removed an unfinished merge")
	}

	for h.ctrl.RunRound() {
	}
	if !m.Done || m.Canceled {
		t.Fatalf("merge state after run: done=%v canceled=%v", m.Done, m.Canceled)
	}
	if len(m.RM.Results()) == 0 {
		t.Fatal("no results")
	}
	if !h.ctrl.AllDone() {
		t.Fatal("AllDone false after completion")
	}

	h.ctrl.Forget(uq.ID)
	if h.ctrl.MergeByUQ(uq.ID) != nil {
		t.Fatal("Forget left the merge indexed")
	}
	if len(h.ctrl.Merges()) != 0 {
		t.Fatalf("history retained %d merges after Forget", len(h.ctrl.Merges()))
	}
}

// TestCancelMerge: canceling an unfinished query marks it done+canceled,
// unlinks its conjunctive queries, and leaves the controller able to serve
// an identical follow-up query (reusing the canceled query's state).
func TestCancelMerge(t *testing.T) {
	h := newHarness(t, 78, 40, 90, 30, false)
	model := scoring.QSystem(0.5, []float64{1, 1, 0.9})
	q := starCQ("CQcan", "x", model, false)
	uq := &cq.UQ{ID: "U-CQcan", K: 5, CQs: []*cq.CQ{q}}
	if _, err := h.mgr.Admit([]batcher.Submission{{At: 0, UQ: uq}}, mqo.Config{K: uq.K}); err != nil {
		t.Fatal(err)
	}
	// A few rounds in, abandon it.
	h.ctrl.RunRound()
	h.ctrl.RunRound()
	h.ctrl.CancelMerge(uq.ID)
	m := h.ctrl.MergeByUQ(uq.ID)
	if m == nil || !m.Done || !m.Canceled {
		t.Fatalf("cancel did not settle the merge: %+v", m)
	}
	if h.ctrl.RunRound() {
		t.Fatal("controller still active after sole query canceled")
	}
	h.ctrl.Forget(uq.ID)

	// Canceling unknown or finished queries is a no-op.
	h.ctrl.CancelMerge("nope")
	h.ctrl.CancelMerge(uq.ID)

	// The same search again must complete normally on the retained state.
	q2 := starCQ("CQcan2", "x", model, false)
	uq2 := &cq.UQ{ID: "U-CQcan2", K: 5, CQs: []*cq.CQ{q2}}
	res := h.run(t, uq2)
	if len(res) == 0 {
		t.Fatal("follow-up query after cancellation returned nothing")
	}
}

// TestSinkStateAccountingAndRelease covers the §6.3 satellite: rank-merge
// seen sets and candidate buffers are visible to memory accounting while
// their CQs are attached, and are released when the queries unlink.
func TestSinkStateAccountingAndRelease(t *testing.T) {
	h := newHarness(t, 17, 40, 120, 30, false)
	q := starCQ("CQacct", "", scoring.QSystem(0.3, []float64{1, 1, 1}), false)
	uq := &cq.UQ{ID: "U-CQacct", K: 8, CQs: []*cq.CQ{q}}
	if _, err := h.mgr.Admit([]batcher.Submission{{At: 0, UQ: uq}}, mqo.Config{K: uq.K}); err != nil {
		t.Fatal(err)
	}
	// Drive rounds until the entry has buffered or deduplicated something,
	// proving the accounting sees mid-run sink state.
	sawState := false
	for i := 0; i < 100000; i++ {
		if h.ctrl.SinkStateRows() > 0 {
			sawState = true
			break
		}
		if !h.ctrl.RunRound() {
			break
		}
	}
	if !sawState {
		t.Fatal("SinkStateRows never reported attached sink state")
	}
	// StateSize must include it (it is strictly larger than node state alone).
	nodeOnly := 0
	for _, n := range h.graph.Nodes() {
		if x, ok := h.ctrl.HasExec(n); ok {
			nodeOnly += x.StateSize()
		}
	}
	if got := h.mgr.StateSize(); got != nodeOnly+h.ctrl.SinkStateRows() {
		t.Fatalf("StateSize %d != node state %d + sink state %d", got, nodeOnly, h.ctrl.SinkStateRows())
	}
	// Completion unlinks every CQ; the seen sets must be gone.
	for h.ctrl.RunRound() {
	}
	if got := h.ctrl.SinkStateRows(); got != 0 {
		t.Fatalf("SinkStateRows after completion = %d, want 0", got)
	}
}
