package qsm_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cq"
	"repro/internal/operator"
	"repro/internal/qsm"
)

// spillSuite is the overlapping query sequence the spill tests drive: U2
// displaces U1's state under the tiny budget, and U3 re-needs it.
func spillSuite() []*cq.UQ {
	return []*cq.UQ{
		{ID: "U1", K: 10, CQs: []*cq.CQ{chainQ("U1.CQ1", "A", "B")}},
		{ID: "U2", K: 10, CQs: []*cq.CQ{chainQ("U2.CQ1", "B", "C")}},
		{ID: "U3", K: 10, CQs: []*cq.CQ{chainQ("U3.CQ1", "A", "B")}},
		{ID: "U4", K: 10, CQs: []*cq.CQ{chainQ("U4.CQ1", "B", "C")}},
	}
}

func runSuite(t *testing.T, r *rig) map[string][]operator.Result {
	t.Helper()
	out := map[string][]operator.Result{}
	for _, uq := range spillSuite() {
		out[uq.ID] = r.runUQ(t, uq)
	}
	return out
}

// TestSpillRevivalMatchesUnboundedResults is the §6.3 spill semantic gate at
// engine level: under a tiny budget with the disk tier enabled, every query
// must produce exactly the unbounded run's answers, while reading fewer
// source-stream tuples than discard eviction at the same budget (the spilled
// prefix comes back as local I/O instead of remote re-reads).
func TestSpillRevivalMatchesUnboundedResults(t *testing.T) {
	const budget = 60

	unbounded := newRig(t, qsm.ShareAll, 0)
	wantResults := runSuite(t, unbounded)
	unboundedStream := unbounded.env.Metrics.Snapshot().StreamTuples

	discard := newRig(t, qsm.ShareAll, budget)
	runSuite(t, discard)
	discardStream := discard.env.Metrics.Snapshot().StreamTuples
	if discard.mgr.Evictions() == 0 {
		t.Fatalf("budget %d evicted nothing; gate is vacuous", budget)
	}
	if discardStream <= unboundedStream {
		t.Fatalf("discard eviction should re-pay source reads: discard=%d unbounded=%d", discardStream, unboundedStream)
	}

	spillDir := filepath.Join(t.TempDir(), "spill")
	spilled := newRig(t, qsm.ShareAll, budget)
	if err := spilled.mgr.EnableSpill(spillDir, spilled.mgr.DefaultResolver()); err != nil {
		t.Fatal(err)
	}
	gotResults := runSuite(t, spilled)
	snap := spilled.env.Metrics.Snapshot()

	if spilled.mgr.Evictions() == 0 || snap.SpillSegsWritten == 0 {
		t.Fatalf("spill run evicted %d, wrote %d segments", spilled.mgr.Evictions(), snap.SpillSegsWritten)
	}
	if snap.RevivalsFromSpill == 0 {
		t.Fatal("no revival was served from spill")
	}
	if snap.StreamTuples >= discardStream {
		t.Fatalf("spill run read %d stream tuples, discard read %d — spill saved nothing", snap.StreamTuples, discardStream)
	}

	for id, want := range wantResults {
		got := gotResults[id]
		if len(got) != len(want) {
			t.Fatalf("%s: %d results vs unbounded %d", id, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i].Score) > 1e-12 ||
				got[i].Row.Identity() != want[i].Row.Identity() ||
				got[i].CQID != want[i].CQID {
				t.Fatalf("%s rank %d differs from unbounded run", id, i)
			}
		}
	}

	// The ledger survived the whole spill/revive cycle consistent.
	if got, want := spilled.mgr.StateSize(), spilled.mgr.AuditStateSize(); got != want {
		t.Fatalf("ledger %d != audit %d after spill cycle", got, want)
	}

	// Closing the subsystem reclaims every segment file.
	if err := spilled.mgr.State.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(spillDir); !os.IsNotExist(err) {
		t.Fatalf("spill dir survived Close: %v", err)
	}
}

// TestSpillMatchesUnboundedSourceWork asserts the strongest consequence of
// spill eviction's design: because the catalog keeps a spilled stream's
// buffered-prefix accounting and revival restores stream positions, a
// bounded spill run performs no more source-stream reads than the unbounded
// run — eviction becomes completely transparent to source-side work.
func TestSpillMatchesUnboundedSourceWork(t *testing.T) {
	const budget = 60
	unbounded := newRig(t, qsm.ShareAll, 0)
	runSuite(t, unbounded)
	spilled := newRig(t, qsm.ShareAll, budget)
	if err := spilled.mgr.EnableSpill(t.TempDir(), spilled.mgr.DefaultResolver()); err != nil {
		t.Fatal(err)
	}
	runSuite(t, spilled)
	ub, sp := unbounded.env.Metrics.Snapshot(), spilled.env.Metrics.Snapshot()
	if sp.StreamTuples > ub.StreamTuples {
		t.Fatalf("spill run read %d stream tuples, unbounded %d", sp.StreamTuples, ub.StreamTuples)
	}
	if spilled.mgr.Evictions() == 0 {
		t.Fatal("spill run evicted nothing; assertion is vacuous")
	}
}
