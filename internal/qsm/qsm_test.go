package qsm_test

import (
	"math"
	"testing"

	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/mqo"
	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/qsm"
	"repro/internal/relationdb"
	"repro/internal/remotedb"
	"repro/internal/scoring"
	"repro/internal/simclock"
	"repro/internal/tuple"
)

type rig struct {
	env   *operator.Env
	graph *plangraph.Graph
	ctrl  *atc.ATC
	mgr   *qsm.Manager
	cat   *catalog.Catalog
}

func newRig(t *testing.T, mode qsm.ShareMode, budget int) *rig {
	t.Helper()
	rng := dist.New(31)
	store := relationdb.NewStore("db")
	cat := catalog.New()
	for _, name := range []string{"A", "B", "C"} {
		s := tuple.NewSchema(name,
			tuple.Column{Name: "a", Type: tuple.KindInt},
			tuple.Column{Name: "b", Type: tuple.KindInt},
			tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
		)
		var rows []*tuple.Tuple
		for i := 0; i < 200; i++ {
			rows = append(rows, tuple.New(s, tuple.Int(int64(rng.Intn(60))), tuple.Int(int64(rng.Intn(60))), tuple.Float(0.2+0.8*rng.Float64())))
		}
		rel := relationdb.NewRelation(s, rows)
		store.Put(rel)
		cat.AddRelation("db", rel)
	}
	env := &operator.Env{Clock: simclock.NewVirtual(0), Delays: simclock.DefaultDelays(dist.New(5)), Metrics: &metrics.Counters{}}
	graph := plangraph.New("")
	ctrl := atc.New(graph, env, remotedb.NewFleet(remotedb.New(store)))
	mgr := qsm.New(graph, ctrl, cat, costmodel.New(cat, costmodel.DefaultParams()), mode)
	mgr.MemoryBudget = budget
	return &rig{env: env, graph: graph, ctrl: ctrl, mgr: mgr, cat: cat}
}

func chainQ(id string, rels ...string) *cq.CQ {
	atoms := make([]*cq.Atom, len(rels))
	for i, r := range rels {
		atoms[i] = &cq.Atom{Rel: r, DB: "db", Args: []cq.Term{cq.V(i), cq.V(i + 1), cq.V(40 + i)}}
	}
	w := make([]float64, len(rels))
	for i := range w {
		w[i] = 1
	}
	return &cq.CQ{ID: id, UQID: "U-" + id, Atoms: atoms, Model: scoring.QSystem(0, w)}
}

func (r *rig) runUQ(t *testing.T, uq *cq.UQ) []operator.Result {
	t.Helper()
	rep, err := r.mgr.Admit([]batcher.Submission{{At: r.env.Clock.Now(), UQ: uq}}, mqo.Config{K: uq.K})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	_ = rep
	for r.ctrl.RunRound() {
	}
	r.mgr.SyncCatalog()
	for _, m := range r.ctrl.Merges() {
		if m.RM.UQ.ID == uq.ID {
			return m.RM.Results()
		}
	}
	t.Fatal("merge missing")
	return nil
}

func TestAdmitModesProduceSameAnswers(t *testing.T) {
	var ref []operator.Result
	for _, mode := range []qsm.ShareMode{qsm.ShareNone, qsm.ShareWithinUQ, qsm.ShareAll} {
		r := newRig(t, mode, 0)
		uq := &cq.UQ{ID: "U1", K: 12, CQs: []*cq.CQ{
			chainQ("U1.CQ1", "A", "B"),
			chainQ("U1.CQ2", "A", "B", "C"),
		}}
		got := r.runUQ(t, uq)
		if len(got) == 0 {
			t.Fatalf("%v: no results", mode)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%v: %d results vs %d", mode, len(got), len(ref))
		}
		for i := range got {
			if math.Abs(got[i].Score-ref[i].Score) > 1e-9 {
				t.Fatalf("%v: rank %d differs", mode, i)
			}
		}
	}
}

func TestShareModeString(t *testing.T) {
	if qsm.ShareNone.String() != "atc-cq" || qsm.ShareWithinUQ.String() != "atc-uq" || qsm.ShareAll.String() != "atc-full" {
		t.Error("mode strings")
	}
}

func TestEvictionUnderBudget(t *testing.T) {
	r := newRig(t, qsm.ShareAll, 50) // tiny budget in rows
	uq1 := &cq.UQ{ID: "U1", K: 10, CQs: []*cq.CQ{chainQ("U1.CQ1", "A", "B")}}
	r.runUQ(t, uq1)
	// Trigger enforcement through the next admission.
	uq2 := &cq.UQ{ID: "U2", K: 10, CQs: []*cq.CQ{chainQ("U2.CQ1", "B", "C")}}
	r.runUQ(t, uq2)
	r.mgr.EnforceBudget(99)
	if r.mgr.Evictions() == 0 {
		t.Errorf("no evictions despite budget 50 (state=%d rows)", r.mgr.StateSize())
	}
	// Evicted state must not break subsequent queries.
	uq3 := &cq.UQ{ID: "U3", K: 10, CQs: []*cq.CQ{chainQ("U3.CQ1", "A", "B")}}
	got := r.runUQ(t, uq3)
	cold := newRig(t, qsm.ShareAll, 0)
	want := cold.runUQ(t, &cq.UQ{ID: "U3", K: 10, CQs: []*cq.CQ{chainQ("U3.CQ1", "A", "B")}})
	if len(got) != len(want) {
		t.Fatalf("post-eviction results %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("post-eviction rank %d differs", i)
		}
	}
}

func TestAdmitEmptyBatch(t *testing.T) {
	r := newRig(t, qsm.ShareAll, 0)
	if _, err := r.mgr.Admit(nil, mqo.Config{}); err == nil {
		t.Error("empty batch should error")
	}
}

func TestAdmitReportFields(t *testing.T) {
	r := newRig(t, qsm.ShareAll, 0)
	uq := &cq.UQ{ID: "U1", K: 5, CQs: []*cq.CQ{chainQ("U1.CQ1", "A", "B")}}
	rep, err := r.mgr.Admit([]batcher.Submission{{At: 0, UQ: uq}}, mqo.Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 || len(rep.CandidatesPerGroup) != 1 || rep.OptimizeWall <= 0 {
		t.Errorf("report = %+v", rep)
	}
	for r.ctrl.RunRound() {
	}
	// Second admission bumps the epoch.
	uq2 := &cq.UQ{ID: "U2", K: 5, CQs: []*cq.CQ{chainQ("U2.CQ1", "A", "B")}}
	rep2, err := r.mgr.Admit([]batcher.Submission{{At: 0, UQ: uq2}}, mqo.Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Epoch != 2 {
		t.Errorf("epoch = %d", rep2.Epoch)
	}
}

func TestSyncCatalogRecordsStreams(t *testing.T) {
	r := newRig(t, qsm.ShareAll, 0)
	uq := &cq.UQ{ID: "U1", K: 1000000, CQs: []*cq.CQ{chainQ("U1.CQ1", "A", "B")}}
	r.runUQ(t, uq)
	// Exhausted streams must have recorded positions in the catalog.
	recorded := false
	for _, n := range r.graph.Nodes() {
		if n.Kind == plangraph.SourceStream && r.cat.StreamedSoFar(n.Expr.Key()) > 0 {
			recorded = true
		}
	}
	if !recorded {
		t.Error("SyncCatalog recorded no stream positions")
	}
}
