package qsm

import (
	"repro/internal/plangraph"
	"repro/internal/state"
)

// Live migration of retained plan state between shard processes (distributed
// serving tier). Export serializes a set of nodes' state with the spill
// segment codec and *discards* them locally — after a successful handoff the
// state lives exactly once, on the target. Import stages the decoded segments
// with the controller so the normal revival paths reinstall them behind the
// consistency gate; a segment the gate rejects is dropped and re-derived by
// source replay on the target, so migration can only ever waste work, never
// produce wrong results.

// ExportNodes serializes and locally discards the retained state of the named
// plan nodes (every idle node when keys is nil — the drain path). Only nodes
// that are structurally evictable and have no pending work export; a node
// whose consumers are also being exported becomes evictable once they detach,
// so the sweep iterates to a fixpoint (joins export first, then the streams
// that fed only them). Probe nodes carry no migratable state and are left
// for ordinary eviction. The returned export carries the engine's epoch so
// the importer can rebase its clock past every shipped stamp.
func (m *Manager) ExportNodes(keys []string) *state.TopicExport {
	var want map[string]bool
	if keys != nil {
		want = make(map[string]bool, len(keys))
		for _, k := range keys {
			want[k] = true
		}
	}
	exp := &state.TopicExport{Epoch: m.ATC.Epoch()}
	for {
		var victims []*plangraph.Node
		for _, n := range m.Graph.Nodes() {
			if want != nil && !want[n.Key] {
				continue
			}
			if n.Kind == plangraph.SourceProbe {
				continue
			}
			x, ok := m.ATC.HasExec(n)
			if !ok || x.HasWork() || !m.Graph.Evictable(n) {
				continue
			}
			victims = append(victims, n)
		}
		if len(victims) == 0 {
			return exp
		}
		for _, n := range victims {
			x, _ := m.ATC.HasExec(n)
			snap := m.ATC.ExportNode(n)
			if snap == nil {
				continue
			}
			data, rows, err := state.EncodeSegment(snap)
			if err != nil {
				continue // unserializable: leave it resident for normal eviction
			}
			seg := state.TopicSegment{
				Key: n.Key, ExprKey: n.Expr.Key(), Kind: int(n.Kind),
				StreamPos: snap.StreamPos, Card: -1, Rows: rows, Data: data,
			}
			if n.Kind == plangraph.SourceStream && x.Stream != nil && x.Stream.Exhausted() {
				seg.Card = float64(x.Stream.Len())
			}
			exp.Segments = append(exp.Segments, seg)
			// Discard locally — the mirror of evict() minus the spill write and
			// the eviction count: the state is handed off, not reclaimed, and
			// this shard must stop pricing the streamed prefix as buffered.
			m.ATC.DropExec(n)
			if n.Kind == plangraph.SourceStream {
				m.Cat.ForgetStreamed(n.Expr.Key())
			}
			m.Graph.Detach(n)
			delete(m.lastUse, n)
			m.ATC.Env.Metrics.AddMigrationOut(int64(rows))
		}
	}
}

// ImportSegments decodes and stages a migrated export, returning how many
// segments were staged, how many were dropped (decode failure, metadata
// mismatch, or refused staging — all of which fall back to source replay),
// and the staged row count. Stream segments also install their catalog
// deltas — streamed prefix and exhausted-cardinality — so the optimizer here
// prices the migrated state exactly as the source shard did and picks the
// same input plans; without that the staged segments would sit unconsumed
// while fresh source reads re-derive everything. If a staged stream segment
// later fails the consume-time gate, the controller's SpillLost hook forgets
// the prefix again.
func (m *Manager) ImportSegments(exp *state.TopicExport) (installed, dropped, rows int) {
	resolve := m.DefaultResolver()
	for _, seg := range exp.Segments {
		snap, err := state.DecodeSegment(seg.Data, resolve)
		if err != nil || snap.Key != seg.Key || snap.Kind != seg.Kind {
			dropped++
			m.ATC.Env.Metrics.AddMigrationDrop()
			continue
		}
		m.ATC.Env.Metrics.AddMigrationIn(int64(snap.RowCount()))
		if !m.ATC.StageSegment(snap, len(seg.Data)) {
			dropped++
			m.ATC.Env.Metrics.AddMigrationDrop()
			continue
		}
		installed++
		rows += snap.RowCount()
		if seg.Kind == int(plangraph.SourceStream) {
			m.Cat.RecordStreamed(seg.ExprKey, seg.StreamPos)
			if seg.Card >= 0 {
				m.Cat.RecordExprCard(seg.ExprKey, seg.Card)
			}
		}
	}
	m.ATC.AdvanceEpochTo(exp.Epoch)
	return installed, dropped, rows
}
