// Package qsm implements the query state manager (§3, §6): it admits batches
// of user queries into a (possibly already running) plan graph by optimizing
// them against reusable in-memory state, grafting the resulting plan into the
// graph (§6.2), recovering historical results for late-arriving queries
// (Algorithm 2, executed in bulk per node via the ATC's Revive), registering
// rank-merge operators, feeding observed statistics back to the catalog
// (§6.1 "updated cost estimates"), and evicting state under memory pressure
// with LRU-by-size tie-break (§6.3).
package qsm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/factorize"
	"repro/internal/mqo"
	"repro/internal/operator"
	"repro/internal/plangraph"
)

// ShareMode selects how much sharing the optimizer may exploit — the four
// experimental configurations of §7.1 map onto these modes plus the grouping
// of user queries into plan graphs.
type ShareMode int

const (
	// ShareNone isolates every conjunctive query (ATC-CQ): each CQ is
	// optimized alone and its plan nodes are namespaced so nothing is shared,
	// not even base streams.
	ShareNone ShareMode = iota
	// ShareWithinUQ shares subexpressions among one user query's CQs but not
	// across user queries (ATC-UQ).
	ShareWithinUQ
	// ShareAll shares across every query in the graph (ATC-FULL, and within
	// each cluster of ATC-CL).
	ShareAll
)

// String names the mode.
func (m ShareMode) String() string {
	switch m {
	case ShareNone:
		return "atc-cq"
	case ShareWithinUQ:
		return "atc-uq"
	default:
		return "atc-full"
	}
}

// OptimizeUnit selects the granularity of the optimization groups within one
// admitted batch (only meaningful under ShareAll).
type OptimizeUnit int

const (
	// UnitBatch jointly optimizes every conjunctive query of the batch in a
	// single group (§5.1's batched multi-query optimization). Search cost
	// grows steeply with batch size (Figure 11), and under a bounded search
	// budget large groups starve: most queries end up assigned raw base
	// streams instead of selective pushdowns.
	UnitBatch OptimizeUnit = iota
	// UnitUQ optimizes each user query separately while still grafting every
	// plan into the one shared graph: identical subexpressions collide on
	// their node keys, so sharing arises structurally (§6.2) rather than
	// from joint search, and optimization cost stays linear in batch size.
	// This is what a serving layer under concurrent load uses.
	UnitUQ
)

// Manager owns one plan graph's state lifecycle.
type Manager struct {
	Graph *plangraph.Graph
	ATC   *atc.ATC
	Cat   *catalog.Catalog
	CM    *costmodel.Model
	Mode  ShareMode
	// Unit selects joint versus per-user-query optimization under ShareAll.
	Unit OptimizeUnit
	// MemoryBudget bounds resident state in rows (0 = unbounded). §6.3.
	MemoryBudget int
	// ChargeOptimizer adds measured optimization wall time to the virtual
	// clock (the paper's response times include optimization, §7.4). Off by
	// default so tests stay bit-deterministic.
	ChargeOptimizer bool

	lastUse map[*plangraph.Node]int // node -> last epoch referenced
	// inputNodes remembers, per CQ id, its streaming-input bindings for
	// threshold groups.
	evictions int
}

// New creates a manager.
func New(g *plangraph.Graph, a *atc.ATC, cat *catalog.Catalog, cm *costmodel.Model, mode ShareMode) *Manager {
	return &Manager{Graph: g, ATC: a, Cat: cat, CM: cm, Mode: mode, lastUse: map[*plangraph.Node]int{}}
}

// Evictions returns how many state objects were evicted (§6.3).
func (m *Manager) Evictions() int { return m.evictions }

// AdmitReport summarises one admission.
type AdmitReport struct {
	Epoch int
	// OptimizeWall is the real time spent in multi-query optimization; it is
	// also charged to the graph's virtual clock (the paper's timings include
	// optimization, §7.4).
	OptimizeWall time.Duration
	// CandidatesPerGroup records Figure 11's x-axis per optimization group.
	CandidatesPerGroup []int
	// SearchNodes sums BestPlan invocations.
	SearchNodes int
	// Recovered counts historical rows recovered for the new queries.
	Recovered int64
}

// optGroup is one unit of optimization: a set of CQs sharing a scope.
type optGroup struct {
	scope string
	qs    []*cq.CQ
}

// Admit optimizes and grafts a batch of user queries, registering their
// rank-merge operators with the ATC. Arrival times follow each submission.
func (m *Manager) Admit(subs []batcher.Submission, cfg mqo.Config) (*AdmitReport, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("qsm: empty batch")
	}
	epoch := m.ATC.BumpEpoch()
	report := &AdmitReport{Epoch: epoch}

	groups := m.groups(subs)
	type cqInput struct {
		node *plangraph.Node
		mode costmodel.Mode
		occ  *cq.ExprOccurrence
	}
	inputsByCQ := map[string][]cqInput{}

	for _, g := range groups {
		start := time.Now()
		res, err := mqo.Optimize(g.qs, m.CM, cfg)
		if err != nil {
			return nil, fmt.Errorf("qsm: optimize %q: %w", g.scope, err)
		}
		report.OptimizeWall += time.Since(start)
		report.CandidatesPerGroup = append(report.CandidatesPerGroup, res.CandidateCount)
		report.SearchNodes += res.SearchNodes
		if err := mqo.Validate(g.qs, res.Inputs); err != nil {
			return nil, fmt.Errorf("qsm: invalid assignment for %q: %w", g.scope, err)
		}
		prevScope := m.Graph.Scope
		m.Graph.Scope = g.scope
		err = factorize.Build(m.Graph, g.qs, res.Inputs, m.Cat)
		if err != nil {
			m.Graph.Scope = prevScope
			return nil, fmt.Errorf("qsm: factorize %q: %w", g.scope, err)
		}
		// Capture per-CQ streaming inputs while the scope is in effect.
		for _, in := range res.Inputs {
			kind := plangraph.SourceStream
			if in.Mode == costmodel.Probe {
				kind = plangraph.SourceProbe
			}
			node := m.Graph.Node(m.Graph.NodeKey(kind, in.Expr.Key()))
			if node == nil {
				m.Graph.Scope = prevScope
				return nil, fmt.Errorf("qsm: input node %s vanished", in.Expr.Key())
			}
			for cqID, occ := range in.Uses {
				inputsByCQ[cqID] = append(inputsByCQ[cqID], cqInput{node: node, mode: in.Mode, occ: occ})
			}
		}
		m.Graph.Scope = prevScope
	}
	// The paper includes optimization time in measured response times.
	if m.ChargeOptimizer {
		m.ATC.Env.Clock.Advance(report.OptimizeWall)
	}

	// Graft each user query: revive terminal nodes (recovering history),
	// build entries with threshold groups, seed buffers from pre-epoch logs,
	// and register rank-merges.
	replayBefore := m.ATC.Env.Metrics.Snapshot().ReplayTuples
	for _, sub := range subs {
		uq := sub.UQ
		var entries []*operator.CQEntry
		for _, q := range uq.CQs {
			ep := m.Graph.Endpoint(q.ID)
			if ep == nil {
				return nil, fmt.Errorf("qsm: no endpoint for %s", q.ID)
			}
			x, err := m.ATC.Revive(ep.Node, epoch)
			if err != nil {
				return nil, err
			}
			m.touch(ep.Node, epoch)
			maxima := make([]float64, len(q.Atoms))
			for i, a := range q.Atoms {
				maxima[i] = m.Cat.MaxScoreOf(a.Rel)
			}
			entry := operator.NewCQEntry(q, q.Model.MaxScore(maxima), maxima)
			for _, in := range inputsByCQ[q.ID] {
				m.touch(in.node, epoch)
				if in.mode != costmodel.Stream {
					continue
				}
				sx, err := m.ATC.Exec(in.node)
				if err != nil {
					return nil, err
				}
				entry.Groups = append(entry.Groups, &operator.ThresholdGroup{
					Atoms:  append([]int(nil), in.occ.AtomOf...),
					Source: sx,
				})
			}
			if len(entry.Groups) == 0 {
				return nil, fmt.Errorf("qsm: %s has no streaming groups", q.ID)
			}
			sink := operator.NewEndpointSink(entry, ep.AtomMap)
			// Seed the entry with results the graph computed before this
			// epoch (pure reuse; no source reads are charged).
			for _, row := range x.Log.BeforeSorted(epoch) {
				sink.Offer(m.ATC.Env, row)
			}
			m.ATC.AttachCQ(q.ID, x, sink)
			entries = append(entries, entry)
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].U > entries[j].U })
		rm := operator.NewRankMerge(uq, entries)
		m.ATC.AddMerge(rm, sub.At)
	}
	report.Recovered = m.ATC.Env.Metrics.Snapshot().ReplayTuples - replayBefore
	m.EnforceBudget(epoch)
	return report, nil
}

// groups splits the batch into optimization units per the sharing mode.
func (m *Manager) groups(subs []batcher.Submission) []optGroup {
	switch m.Mode {
	case ShareNone:
		var out []optGroup
		for _, s := range subs {
			for _, q := range s.UQ.CQs {
				out = append(out, optGroup{scope: q.ID, qs: []*cq.CQ{q}})
			}
		}
		return out
	case ShareWithinUQ:
		var out []optGroup
		for _, s := range subs {
			out = append(out, optGroup{scope: s.UQ.ID, qs: s.UQ.CQs})
		}
		return out
	default:
		if m.Unit == UnitUQ {
			// One group per user query, all in the shared (unscoped) graph:
			// cross-query sharing is structural rather than searched.
			var out []optGroup
			for _, s := range subs {
				out = append(out, optGroup{scope: "", qs: s.UQ.CQs})
			}
			return out
		}
		var qs []*cq.CQ
		for _, s := range subs {
			qs = append(qs, s.UQ.CQs...)
		}
		return []optGroup{{scope: "", qs: qs}}
	}
}

func (m *Manager) touch(n *plangraph.Node, epoch int) { m.lastUse[n] = epoch }

// SyncCatalog feeds observed execution state back into the catalog so the
// next optimization round costs reuse correctly (§6.1).
func (m *Manager) SyncCatalog() {
	for _, n := range m.Graph.Nodes() {
		x, ok := m.ATC.HasExec(n)
		if !ok {
			continue
		}
		switch n.Kind {
		case plangraph.SourceStream:
			if x.Stream != nil {
				key := n.Expr.Key()
				m.Cat.RecordStreamed(key, x.Stream.Pos())
				if x.Stream.Exhausted() {
					m.Cat.RecordExprCard(key, float64(x.Stream.Len()))
				}
			}
		case plangraph.Join:
			// Completed joins whose inputs are exhausted have exact counts;
			// partial counts would mislead the estimator, so skip them.
		}
	}
}

// StateSize reports total resident state in rows: node logs and modules
// (plus any materialised log identity sets) and the attached rank-merge
// endpoints' candidate buffers and duplicate sets, which are state the §6.3
// accounting would otherwise never see.
func (m *Manager) StateSize() int {
	total := m.ATC.SinkStateRows()
	for _, n := range m.Graph.Nodes() {
		if x, ok := m.ATC.HasExec(n); ok {
			total += x.StateSize()
		}
	}
	return total
}

// EnforceBudget evicts least-recently-used, currently idle state until the
// graph fits the memory budget (§6.3: LRU with size as tie-breaker).
func (m *Manager) EnforceBudget(epoch int) {
	if m.MemoryBudget <= 0 {
		return
	}
	for m.StateSize() > m.MemoryBudget {
		victim := m.pickVictim()
		if victim == nil {
			return // everything live or pinned; nothing evictable
		}
		m.evict(victim)
	}
}

// pickVictim chooses the evictable node with the oldest last use, breaking
// ties toward larger state.
func (m *Manager) pickVictim() *plangraph.Node {
	var best *plangraph.Node
	bestUse, bestSize := 0, 0
	for _, n := range m.Graph.Nodes() {
		x, ok := m.ATC.HasExec(n)
		if !ok || x.HasWork() || len(n.Consumers) > 0 {
			continue // live, or structurally feeding cached state upstream
		}
		if m.Graph.HasEndpointOn(n) {
			continue
		}
		size := x.StateSize()
		if size == 0 {
			continue
		}
		use := m.lastUse[n]
		if best == nil || use < bestUse || (use == bestUse && size > bestSize) {
			best, bestUse, bestSize = n, use, size
		}
	}
	return best
}

// evict removes a node's runtime state and detaches it from the graph; a
// future query needing the expression re-creates (and re-pays for) it.
func (m *Manager) evict(n *plangraph.Node) {
	m.ATC.DropExec(n)
	if n.Kind == plangraph.SourceStream {
		m.Cat.ForgetStreamed(n.Expr.Key())
	}
	m.Graph.Detach(n)
	delete(m.lastUse, n)
	m.evictions++
}
