// Package qsm implements the query state manager (§3, §6): it admits batches
// of user queries into a (possibly already running) plan graph by optimizing
// them against reusable in-memory state, grafting the resulting plan into the
// graph (§6.2), recovering historical results for late-arriving queries
// (Algorithm 2, executed in bulk per node via the ATC's Revive), registering
// rank-merge operators, feeding observed statistics back to the catalog
// (§6.1 "updated cost estimates"), and evicting state under memory pressure
// with LRU-by-size tie-break (§6.3).
package qsm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/tuple"

	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/factorize"
	"repro/internal/mqo"
	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/state"
)

// ShareMode selects how much sharing the optimizer may exploit — the four
// experimental configurations of §7.1 map onto these modes plus the grouping
// of user queries into plan graphs.
type ShareMode int

const (
	// ShareNone isolates every conjunctive query (ATC-CQ): each CQ is
	// optimized alone and its plan nodes are namespaced so nothing is shared,
	// not even base streams.
	ShareNone ShareMode = iota
	// ShareWithinUQ shares subexpressions among one user query's CQs but not
	// across user queries (ATC-UQ).
	ShareWithinUQ
	// ShareAll shares across every query in the graph (ATC-FULL, and within
	// each cluster of ATC-CL).
	ShareAll
)

// String names the mode.
func (m ShareMode) String() string {
	switch m {
	case ShareNone:
		return "atc-cq"
	case ShareWithinUQ:
		return "atc-uq"
	default:
		return "atc-full"
	}
}

// OptimizeUnit selects the granularity of the optimization groups within one
// admitted batch (only meaningful under ShareAll).
type OptimizeUnit int

const (
	// UnitBatch jointly optimizes every conjunctive query of the batch in a
	// single group (§5.1's batched multi-query optimization). Search cost
	// grows steeply with batch size (Figure 11), and under a bounded search
	// budget large groups starve: most queries end up assigned raw base
	// streams instead of selective pushdowns.
	UnitBatch OptimizeUnit = iota
	// UnitUQ optimizes each user query separately while still grafting every
	// plan into the one shared graph: identical subexpressions collide on
	// their node keys, so sharing arises structurally (§6.2) rather than
	// from joint search, and optimization cost stays linear in batch size.
	// This is what a serving layer under concurrent load uses.
	UnitUQ
)

// Manager owns one plan graph's state lifecycle.
type Manager struct {
	Graph *plangraph.Graph
	ATC   *atc.ATC
	Cat   *catalog.Catalog
	CM    *costmodel.Model
	Mode  ShareMode
	// Unit selects joint versus per-user-query optimization under ShareAll.
	Unit OptimizeUnit
	// MemoryBudget bounds resident state in rows (0 = unbounded). §6.3. The
	// serving layer overrides it per enforcement through State.SetBudgetFn
	// (cross-shard arbitration of one global budget).
	MemoryBudget int
	// ChargeOptimizer adds measured optimization wall time to the virtual
	// clock (the paper's response times include optimization, §7.4). Off by
	// default so tests stay bit-deterministic.
	ChargeOptimizer bool

	// State is the execution-state subsystem: the accounting ledger every
	// retained structure reports into, the eviction policy, and the optional
	// spill tier.
	State *state.Manager

	lastUse map[*plangraph.Node]int // node -> last epoch referenced
}

// New creates a manager, wiring a fresh execution-state subsystem (ledger +
// LRU policy, no spill) into the controller.
func New(g *plangraph.Graph, a *atc.ATC, cat *catalog.Catalog, cm *costmodel.Model, mode ShareMode) *Manager {
	m := &Manager{Graph: g, ATC: a, Cat: cat, CM: cm, Mode: mode,
		State:   state.NewManager(),
		lastUse: map[*plangraph.Node]int{},
	}
	a.BindState(m.State.Ledger, nil)
	// A spilled stream keeps its buffered-prefix accounting (evict); if the
	// segment later proves unrestorable the prefix is gone for real.
	a.SpillLost = cat.ForgetStreamed
	return m
}

// EnableSpill turns discard eviction into spill eviction: evicted plan
// segments serialize to per-shard disk segments under dir and revival reads
// them back (§6.3 disk tier). The resolver maps spilled base-tuple
// references back to canonical tuples; DefaultResolver builds one from the
// manager's catalog and the controller's database fleet.
func (m *Manager) EnableSpill(dir string, resolve state.TupleResolver) error {
	sp, err := state.NewSpill(dir, resolve)
	if err != nil {
		return err
	}
	m.State.AttachSpill(sp)
	m.ATC.BindState(m.State.Ledger, sp)
	return nil
}

// DefaultResolver resolves spilled tuple references through the catalog (to
// find the owning database) and the fleet's relation stores.
func (m *Manager) DefaultResolver() state.TupleResolver {
	return func(rel string, seq int64) (*tuple.Tuple, error) {
		st, err := m.Cat.Relation(rel)
		if err != nil {
			return nil, err
		}
		db, err := m.ATC.Fleet.DB(st.DB)
		if err != nil {
			return nil, err
		}
		r, err := db.Store().Relation(rel)
		if err != nil {
			return nil, err
		}
		if seq < 0 || int(seq) >= r.Cardinality() {
			return nil, fmt.Errorf("qsm: spilled ref %s[%d] out of range", rel, seq)
		}
		return r.Row(int(seq)), nil
	}
}

// Evictions returns how many state objects were evicted (§6.3).
func (m *Manager) Evictions() int { return m.State.Evictions() }

// AdmitReport summarises one admission.
type AdmitReport struct {
	Epoch int
	// OptimizeWall is the real time spent in multi-query optimization; it is
	// also charged to the graph's virtual clock (the paper's timings include
	// optimization, §7.4).
	OptimizeWall time.Duration
	// CandidatesPerGroup records Figure 11's x-axis per optimization group.
	CandidatesPerGroup []int
	// SearchNodes sums BestPlan invocations.
	SearchNodes int
	// Recovered counts historical rows recovered for the new queries.
	Recovered int64
}

// optGroup is one unit of optimization: a set of CQs sharing a scope.
type optGroup struct {
	scope string
	qs    []*cq.CQ
}

// Admit optimizes and grafts a batch of user queries, registering their
// rank-merge operators with the ATC. Arrival times follow each submission.
func (m *Manager) Admit(subs []batcher.Submission, cfg mqo.Config) (*AdmitReport, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("qsm: empty batch")
	}
	epoch := m.ATC.BumpEpoch()
	report := &AdmitReport{Epoch: epoch}

	groups := m.groups(subs)
	type cqInput struct {
		node *plangraph.Node
		mode costmodel.Mode
		occ  *cq.ExprOccurrence
	}
	inputsByCQ := map[string][]cqInput{}

	// Optimize the groups — concurrently when the controller runs the
	// parallel executor. Each group's search is a pure function of the
	// catalog and its own queries (under UnitUQ the groups are independent
	// user queries), so the results are identical to the serial pass; only
	// grafting below mutates the shared graph, and it stays serial, in
	// group order. OptimizeWall remains the summed search cost — the same
	// quantity the serial engine reports.
	optResults := m.optimizeGroups(groups, cfg, report)

	for gi, g := range groups {
		res := optResults[gi].res
		if err := optResults[gi].err; err != nil {
			return nil, fmt.Errorf("qsm: optimize %q: %w", g.scope, err)
		}
		if err := mqo.Validate(g.qs, res.Inputs); err != nil {
			return nil, fmt.Errorf("qsm: invalid assignment for %q: %w", g.scope, err)
		}
		prevScope := m.Graph.Scope
		m.Graph.Scope = g.scope
		err := factorize.Build(m.Graph, g.qs, res.Inputs, m.Cat)
		if err != nil {
			m.Graph.Scope = prevScope
			return nil, fmt.Errorf("qsm: factorize %q: %w", g.scope, err)
		}
		// Capture per-CQ streaming inputs while the scope is in effect.
		for _, in := range res.Inputs {
			kind := plangraph.SourceStream
			if in.Mode == costmodel.Probe {
				kind = plangraph.SourceProbe
			}
			node := m.Graph.Node(m.Graph.NodeKey(kind, in.Expr.Key()))
			if node == nil {
				m.Graph.Scope = prevScope
				return nil, fmt.Errorf("qsm: input node %s vanished", in.Expr.Key())
			}
			for cqID, occ := range in.Uses {
				inputsByCQ[cqID] = append(inputsByCQ[cqID], cqInput{node: node, mode: in.Mode, occ: occ})
			}
		}
		m.Graph.Scope = prevScope
	}
	// The paper includes optimization time in measured response times.
	if m.ChargeOptimizer {
		m.ATC.Env.Clock.Advance(report.OptimizeWall)
	}

	// Open the batch's cold remote streams concurrently before grafting
	// (parallel controllers only; a no-op otherwise). Opening materialises
	// independent pushed-down expressions at their databases, so a cold
	// multi-source admission need not pay the round trips one after another.
	// The node list is built in submission order so failures are
	// deterministic.
	var preopen []*plangraph.Node
	for _, sub := range subs {
		for _, q := range sub.UQ.CQs {
			for _, in := range inputsByCQ[q.ID] {
				if in.mode == costmodel.Stream {
					preopen = append(preopen, in.node)
				}
			}
		}
	}
	if err := m.ATC.PreopenStreams(preopen); err != nil {
		return nil, err
	}

	// Graft each user query: revive terminal nodes (recovering history),
	// build entries with threshold groups, seed buffers from pre-epoch logs,
	// and register rank-merges.
	replayBefore := m.ATC.Env.Metrics.Snapshot().ReplayTuples
	for _, sub := range subs {
		uq := sub.UQ
		var entries []*operator.CQEntry
		for _, q := range uq.CQs {
			ep := m.Graph.Endpoint(q.ID)
			if ep == nil {
				return nil, fmt.Errorf("qsm: no endpoint for %s", q.ID)
			}
			x, err := m.ATC.Revive(ep.Node, epoch)
			if err != nil {
				return nil, err
			}
			m.touch(ep.Node, epoch)
			maxima := make([]float64, len(q.Atoms))
			for i, a := range q.Atoms {
				maxima[i] = m.Cat.MaxScoreOf(a.Rel)
			}
			entry := operator.NewCQEntry(q, q.Model.MaxScore(maxima), maxima)
			entry.SetAccount(m.State.Ledger.NewAccount("sink::" + q.ID))
			for _, in := range inputsByCQ[q.ID] {
				m.touch(in.node, epoch)
				if in.mode != costmodel.Stream {
					continue
				}
				sx, err := m.ATC.Exec(in.node)
				if err != nil {
					return nil, err
				}
				entry.Groups = append(entry.Groups, &operator.ThresholdGroup{
					Atoms:  append([]int(nil), in.occ.AtomOf...),
					Source: sx,
				})
			}
			if len(entry.Groups) == 0 {
				return nil, fmt.Errorf("qsm: %s has no streaming groups", q.ID)
			}
			sink := operator.NewEndpointSink(entry, ep.AtomMap)
			// Seed the entry with results the graph computed before this
			// epoch (pure reuse; no source reads are charged).
			for _, row := range x.Log.BeforeSorted(epoch) {
				sink.Offer(m.ATC.Env, row)
			}
			m.ATC.AttachCQ(q.ID, x, sink)
			entries = append(entries, entry)
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].U > entries[j].U })
		rm := operator.NewRankMerge(uq, entries)
		m.ATC.AddMerge(rm, sub.At)
	}
	report.Recovered = m.ATC.Env.Metrics.Snapshot().ReplayTuples - replayBefore
	m.EnforceBudget(epoch)
	return report, nil
}

// optResult carries one group's optimization outcome.
type optResult struct {
	res *mqo.Result
	err error
}

// optimizeGroups runs multi-query optimization for every group, bounded by
// the controller's worker count (serial when the parallel executor is off or
// there is only one group), and folds the search statistics into the report
// in group order.
func (m *Manager) optimizeGroups(groups []optGroup, cfg mqo.Config, report *AdmitReport) []optResult {
	out := make([]optResult, len(groups))
	walls := make([]time.Duration, len(groups))
	workers := m.ATC.Workers()
	if workers > 1 && len(groups) > 1 {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := range groups {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				start := time.Now() //qsys:allow wallclock: intentional §7 semantics — the paper charges measured optimization wall time into response time (opt-in ChargeOptimizer); stats-only otherwise
				res, err := mqo.Optimize(groups[i].qs, m.CM, cfg)
				walls[i] = time.Since(start) //qsys:allow wallclock: intentional §7 semantics — the paper charges measured optimization wall time into response time (opt-in ChargeOptimizer); stats-only otherwise
				out[i] = optResult{res: res, err: err}
			}(i)
		}
		wg.Wait()
	} else {
		for i := range groups {
			start := time.Now() //qsys:allow wallclock: intentional §7 semantics — the paper charges measured optimization wall time into response time (opt-in ChargeOptimizer); stats-only otherwise
			res, err := mqo.Optimize(groups[i].qs, m.CM, cfg)
			walls[i] = time.Since(start) //qsys:allow wallclock: intentional §7 semantics — the paper charges measured optimization wall time into response time (opt-in ChargeOptimizer); stats-only otherwise
			out[i] = optResult{res: res, err: err}
		}
	}
	for i := range groups {
		report.OptimizeWall += walls[i]
		if out[i].res != nil {
			report.CandidatesPerGroup = append(report.CandidatesPerGroup, out[i].res.CandidateCount)
			report.SearchNodes += out[i].res.SearchNodes
		}
	}
	return out
}

// groups splits the batch into optimization units per the sharing mode.
func (m *Manager) groups(subs []batcher.Submission) []optGroup {
	switch m.Mode {
	case ShareNone:
		var out []optGroup
		for _, s := range subs {
			for _, q := range s.UQ.CQs {
				out = append(out, optGroup{scope: q.ID, qs: []*cq.CQ{q}})
			}
		}
		return out
	case ShareWithinUQ:
		var out []optGroup
		for _, s := range subs {
			out = append(out, optGroup{scope: s.UQ.ID, qs: s.UQ.CQs})
		}
		return out
	default:
		if m.Unit == UnitUQ {
			// One group per user query, all in the shared (unscoped) graph:
			// cross-query sharing is structural rather than searched.
			var out []optGroup
			for _, s := range subs {
				out = append(out, optGroup{scope: "", qs: s.UQ.CQs})
			}
			return out
		}
		var qs []*cq.CQ
		for _, s := range subs {
			qs = append(qs, s.UQ.CQs...)
		}
		return []optGroup{{scope: "", qs: qs}}
	}
}

func (m *Manager) touch(n *plangraph.Node, epoch int) { m.lastUse[n] = epoch }

// SyncCatalog feeds observed execution state back into the catalog so the
// next optimization round costs reuse correctly (§6.1).
func (m *Manager) SyncCatalog() {
	for _, n := range m.Graph.Nodes() {
		x, ok := m.ATC.HasExec(n)
		if !ok {
			continue
		}
		switch n.Kind {
		case plangraph.SourceStream:
			if x.Stream != nil {
				key := n.Expr.Key()
				m.Cat.RecordStreamed(key, x.Stream.Pos())
				if x.Stream.Exhausted() {
					m.Cat.RecordExprCard(key, float64(x.Stream.Len()))
				}
			}
		case plangraph.Join:
			// Completed joins whose inputs are exhausted have exact counts;
			// partial counts would mislead the estimator, so skip them.
		}
	}
}

// StateSize reports total resident state in rows — node logs and modules
// (plus any materialised log identity sets) and the attached rank-merge
// endpoints' candidate buffers and duplicate sets — from the subsystem's
// running ledger, in O(1). AuditStateSize recomputes the same number the
// pre-subsystem way.
func (m *Manager) StateSize() int { return int(m.State.Ledger.Total()) }

// AuditStateSize recomputes resident state by rescanning the graph and the
// attached endpoints — the O(graph) accounting the ledger replaced. It must
// always equal StateSize (pinned by tests; the serving layer exposes both so
// a drift would be visible in production stats).
func (m *Manager) AuditStateSize() int {
	total := m.ATC.SinkStateRows()
	for _, n := range m.Graph.Nodes() {
		if x, ok := m.ATC.HasExec(n); ok {
			total += x.StateSize()
		}
	}
	return total
}

// ScratchSize reports the executor's pooled scratch (free-listed part
// vectors held between mini-batch flushes) from the running ledger, in rows.
// Scratch is accounted beside StateSize, never inside it: it is reclaimable
// instantly and must not sway eviction victim choice.
func (m *Manager) ScratchSize() int { return int(m.State.Ledger.Scratch()) }

// AuditScratchSize recomputes pooled executor scratch by rescanning the
// graph; it must always equal ScratchSize.
func (m *Manager) AuditScratchSize() int {
	total := 0
	for _, n := range m.Graph.Nodes() {
		if x, ok := m.ATC.HasExec(n); ok {
			total += x.ScratchSize()
		}
	}
	return total
}

// EnforceBudget evicts currently idle state under the active policy until
// resident state fits the budget (§6.3). The budget is the arbitrated
// allotment when the serving layer installed one, else MemoryBudget; 0 means
// unbounded. Each round costs one pass over the graph to collect candidates
// with their ledger-tracked sizes — the per-victim O(graph) StateSize
// rescans of the pre-subsystem loop are gone.
func (m *Manager) EnforceBudget(epoch int) {
	budget := m.State.Budget(m.MemoryBudget)
	if budget <= 0 {
		return
	}
	for m.State.Ledger.Total() > int64(budget) {
		cands, nodes := m.evictionCandidates()
		pick := m.State.Policy().Pick(cands)
		if pick < 0 || pick >= len(nodes) {
			return // everything live or pinned; nothing evictable
		}
		m.evict(nodes[pick])
	}
}

// evictionCandidates collects the evictable nodes in plan-graph creation
// order (the deterministic tie-break every policy inherits), with sizes from
// their ledger accounts and re-derivation costs from the cost model.
func (m *Manager) evictionCandidates() ([]state.Candidate, []*plangraph.Node) {
	var cands []state.Candidate
	var nodes []*plangraph.Node
	for _, n := range m.Graph.Nodes() {
		x, ok := m.ATC.HasExec(n)
		if !ok || x.HasWork() || !m.Graph.Evictable(n) {
			continue // live, or structurally feeding cached state upstream
		}
		rows := x.Account().Rows()
		if rows == 0 {
			continue
		}
		cands = append(cands, state.Candidate{
			Key:         n.Key,
			LastUse:     m.lastUse[n],
			Rows:        rows,
			RebuildCost: m.rebuildCost(n, x),
		})
		nodes = append(nodes, n)
	}
	return cands, nodes
}

// rebuildCost estimates re-deriving the node's state after a discard: a
// stream source re-pays one remote read per delivered tuple; an m-join
// recomputes its rows by in-memory join work from upstream logs.
func (m *Manager) rebuildCost(n *plangraph.Node, x *operator.NodeExec) float64 {
	if n.Kind == plangraph.SourceStream && x.Stream != nil {
		return m.CM.StreamRebuildCost(x.Stream.Pos())
	}
	return m.CM.JoinRebuildCost(int(x.Account().Rows()))
}

// evict spills (when the disk tier is enabled) then removes a node's runtime
// state and detaches it from the graph. With a spill segment written, the
// catalog keeps the node's streamed-prefix accounting — the state is still
// recoverable at local cost, so the optimizer should keep pricing it as
// buffered; a discard forgets it, and a future query re-creates and re-pays
// for the expression.
func (m *Manager) evict(n *plangraph.Node) {
	spilled := m.ATC.SpillNode(n)
	m.ATC.DropExec(n)
	if n.Kind == plangraph.SourceStream && !spilled {
		m.Cat.ForgetStreamed(n.Expr.Key())
	}
	m.Graph.Detach(n)
	delete(m.lastUse, n)
	m.State.NoteEviction(m.State.Policy().Name())
}
