package qsm

import (
	"repro/internal/plangraph"
	"repro/internal/state"
)

// CheckpointExport serializes the retained state of every quiescent plan
// node WITHOUT discarding anything — the non-destructive sibling of
// ExportNodes, used by the crash-recovery tier's periodic checkpoints. The
// capture runs on the shard's executor goroutine between scheduling rounds,
// so it is a single point in time: parent log lengths and module part
// counts are mutually consistent, which is exactly what the import gate's
// structural checks require. Nodes with pending work are skipped (their
// state is mid-flight and would fail the gate anyway); probe nodes carry no
// checkpointable state. Unlike migration there is no evictability
// requirement and no fixpoint — nothing detaches, so consumer edges never
// block a capture.
func (m *Manager) CheckpointExport() *state.TopicExport {
	exp := &state.TopicExport{Epoch: m.ATC.Epoch()}
	for _, n := range m.Graph.Nodes() {
		if n.Kind == plangraph.SourceProbe {
			continue
		}
		x, ok := m.ATC.HasExec(n)
		if !ok || x.HasWork() {
			continue
		}
		snap := m.ATC.ExportNode(n)
		if snap == nil {
			continue
		}
		data, rows, err := state.EncodeSegment(snap)
		if err != nil {
			continue
		}
		seg := state.TopicSegment{
			Key: n.Key, ExprKey: n.Expr.Key(), Kind: int(n.Kind),
			StreamPos: snap.StreamPos, Card: -1, Rows: rows, Data: data,
		}
		if n.Kind == plangraph.SourceStream && x.Stream != nil && x.Stream.Exhausted() {
			seg.Card = float64(x.Stream.Len())
		}
		exp.Segments = append(exp.Segments, seg)
	}
	return exp
}
