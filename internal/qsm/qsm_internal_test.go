package qsm

// Internal tests pinning the state subsystem against the pre-subsystem
// implementation: the ledger's running totals must equal the O(graph)
// recomputation at every step, and the LRU policy over ledger-sized
// candidates must pick exactly the victims the old
// StateSize-rescanning pickVictim chose, in the same order.

import (
	"testing"

	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/mqo"
	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/relationdb"
	"repro/internal/remotedb"
	"repro/internal/scoring"
	"repro/internal/simclock"
	"repro/internal/tuple"
)

// legacyStateSize is the pre-subsystem accounting: a full rescan of the
// graph's execs plus the attached endpoints.
func legacyStateSize(m *Manager) int {
	total := m.ATC.SinkStateRows()
	for _, n := range m.Graph.Nodes() {
		if x, ok := m.ATC.HasExec(n); ok {
			total += x.StateSize()
		}
	}
	return total
}

// legacyPickVictim is a verbatim replica of the old eviction choice: walk
// the graph in creation order, skip live or pinned nodes, recompute each
// node's StateSize, keep the oldest last use with size as tie-break.
func legacyPickVictim(m *Manager) *plangraph.Node {
	var best *plangraph.Node
	bestUse, bestSize := 0, 0
	for _, n := range m.Graph.Nodes() {
		x, ok := m.ATC.HasExec(n)
		if !ok || x.HasWork() || len(n.Consumers) > 0 {
			continue
		}
		if m.Graph.HasEndpointOn(n) {
			continue
		}
		size := x.StateSize()
		if size == 0 {
			continue
		}
		use := m.lastUse[n]
		if best == nil || use < bestUse || (use == bestUse && size > bestSize) {
			best, bestUse, bestSize = n, use, size
		}
	}
	return best
}

func internalRig(t *testing.T) (*Manager, *operator.Env) {
	t.Helper()
	rng := dist.New(31)
	store := relationdb.NewStore("db")
	cat := catalog.New()
	for _, name := range []string{"A", "B", "C", "D"} {
		s := tuple.NewSchema(name,
			tuple.Column{Name: "a", Type: tuple.KindInt},
			tuple.Column{Name: "b", Type: tuple.KindInt},
			tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
		)
		var rows []*tuple.Tuple
		for i := 0; i < 220; i++ {
			rows = append(rows, tuple.New(s, tuple.Int(int64(rng.Intn(55))), tuple.Int(int64(rng.Intn(55))), tuple.Float(0.2+0.8*rng.Float64())))
		}
		rel := relationdb.NewRelation(s, rows)
		store.Put(rel)
		cat.AddRelation("db", rel)
	}
	env := &operator.Env{Clock: simclock.NewVirtual(0), Delays: simclock.DefaultDelays(dist.New(5)), Metrics: &metrics.Counters{}}
	graph := plangraph.New("")
	ctrl := atc.New(graph, env, remotedb.NewFleet(remotedb.New(store)))
	mgr := New(graph, ctrl, cat, costmodel.New(cat, costmodel.DefaultParams()), ShareAll)
	return mgr, env
}

func internalChainQ(id string, rels ...string) *cq.CQ {
	atoms := make([]*cq.Atom, len(rels))
	for i, r := range rels {
		atoms[i] = &cq.Atom{Rel: r, DB: "db", Args: []cq.Term{cq.V(i), cq.V(i + 1), cq.V(40 + i)}}
	}
	w := make([]float64, len(rels))
	for i := range w {
		w[i] = 1
	}
	return &cq.CQ{ID: id, UQID: "U-" + id, Atoms: atoms, Model: scoring.QSystem(0, w)}
}

func runInternalUQ(t *testing.T, m *Manager, env *operator.Env, uq *cq.UQ) {
	t.Helper()
	if _, err := m.Admit([]batcher.Submission{{At: env.Clock.Now(), UQ: uq}}, mqo.Config{K: uq.K}); err != nil {
		t.Fatalf("admit %s: %v", uq.ID, err)
	}
	for m.ATC.RunRound() {
	}
	m.SyncCatalog()
}

// TestLedgerMatchesLegacyAccounting drives several overlapping queries
// through the engine and checks, after every lifecycle step, that the
// running ledger equals the pre-subsystem rescan.
func TestLedgerMatchesLegacyAccounting(t *testing.T) {
	m, env := internalRig(t)
	queries := []*cq.UQ{
		{ID: "U1", K: 10, CQs: []*cq.CQ{internalChainQ("U1.CQ1", "A", "B")}},
		{ID: "U2", K: 10, CQs: []*cq.CQ{internalChainQ("U2.CQ1", "B", "C"), internalChainQ("U2.CQ2", "A", "B", "C")}},
		{ID: "U3", K: 15, CQs: []*cq.CQ{internalChainQ("U3.CQ1", "C", "D")}},
		{ID: "U4", K: 10, CQs: []*cq.CQ{internalChainQ("U4.CQ1", "A", "B")}},
	}
	for _, uq := range queries {
		runInternalUQ(t, m, env, uq)
		if got, want := m.StateSize(), legacyStateSize(m); got != want {
			t.Fatalf("after %s: ledger %d != legacy rescan %d", uq.ID, got, want)
		}
		if got, want := m.StateSize(), m.AuditStateSize(); got != want {
			t.Fatalf("after %s: ledger %d != audit %d", uq.ID, got, want)
		}
	}
	if m.StateSize() == 0 {
		t.Fatal("no retained state accumulated; test is vacuous")
	}
}

// TestEnforceBudgetMatchesLegacy pins victim equivalence: on a seeded graph
// with retained state, the ledger-driven LRU eviction must pick the same
// victims in the same order as the old O(nodes²) implementation.
func TestEnforceBudgetMatchesLegacy(t *testing.T) {
	m, env := internalRig(t)
	runInternalUQ(t, m, env, &cq.UQ{ID: "U1", K: 10, CQs: []*cq.CQ{internalChainQ("U1.CQ1", "A", "B")}})
	runInternalUQ(t, m, env, &cq.UQ{ID: "U2", K: 10, CQs: []*cq.CQ{internalChainQ("U2.CQ1", "B", "C")}})
	runInternalUQ(t, m, env, &cq.UQ{ID: "U3", K: 10, CQs: []*cq.CQ{internalChainQ("U3.CQ1", "C", "D"), internalChainQ("U3.CQ2", "A", "B", "C")}})

	const budget = 40
	var evicted []string
	steps := 0
	for legacyStateSize(m) > budget {
		steps++
		if steps > 1000 {
			t.Fatal("eviction did not converge")
		}
		want := legacyPickVictim(m)
		cands, nodes := m.evictionCandidates()
		pick := m.State.Policy().Pick(cands)
		if want == nil {
			if pick >= 0 {
				t.Fatalf("legacy declines but subsystem picks %s", nodes[pick].Key)
			}
			break
		}
		if pick < 0 {
			t.Fatalf("subsystem declines but legacy picks %s", want.Key)
		}
		got := nodes[pick]
		if got != want {
			t.Fatalf("victim %d: subsystem picks %s, legacy picks %s", len(evicted), got.Key, want.Key)
		}
		m.evict(got)
		evicted = append(evicted, got.Key)
		if ls, ss := legacyStateSize(m), m.StateSize(); ls != ss {
			t.Fatalf("after evicting %s: ledger %d != legacy %d", got.Key, ss, ls)
		}
	}
	if len(evicted) < 2 {
		t.Fatalf("only %d evictions exercised (state too small for budget %d)", len(evicted), budget)
	}
	// The public entry point arrives at the same end state.
	m2, env2 := internalRig(t)
	runInternalUQ(t, m2, env2, &cq.UQ{ID: "U1", K: 10, CQs: []*cq.CQ{internalChainQ("U1.CQ1", "A", "B")}})
	runInternalUQ(t, m2, env2, &cq.UQ{ID: "U2", K: 10, CQs: []*cq.CQ{internalChainQ("U2.CQ1", "B", "C")}})
	runInternalUQ(t, m2, env2, &cq.UQ{ID: "U3", K: 10, CQs: []*cq.CQ{internalChainQ("U3.CQ1", "C", "D"), internalChainQ("U3.CQ2", "A", "B", "C")}})
	m2.MemoryBudget = budget
	m2.EnforceBudget(99)
	if m2.Evictions() != len(evicted) {
		t.Fatalf("EnforceBudget evicted %d, stepwise loop evicted %d", m2.Evictions(), len(evicted))
	}
	if got, want := m2.StateSize(), m2.AuditStateSize(); got != want {
		t.Fatalf("post-enforcement ledger %d != audit %d", got, want)
	}
}
