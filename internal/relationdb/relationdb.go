// Package relationdb is the storage substrate for the simulated remote
// databases: in-memory relations kept in nonincreasing score order (the
// paper's streaming-source contract, §3) with lazily-built hash indexes over
// join columns (the probe path of random-access sources).
package relationdb

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/tuple"
)

// Relation stores the rows of one relation sorted by nonincreasing score
// (ties broken by primary key for determinism) and serves two access paths:
// positional scan in score order, and hash lookup by column value.
type Relation struct {
	schema *tuple.Schema
	rows   []*tuple.Tuple

	mu      sync.Mutex
	indexes map[int]map[string][]*tuple.Tuple // column -> value key -> rows
}

// NewRelation builds a relation from rows; the slice is re-sorted into
// nonincreasing score order and sequence numbers are assigned.
func NewRelation(schema *tuple.Schema, rows []*tuple.Tuple) *Relation {
	sorted := append([]*tuple.Tuple(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		si, sj := sorted[i].Score(), sorted[j].Score()
		if si != sj {
			return si > sj
		}
		return sorted[i].Identity() < sorted[j].Identity()
	})
	for i, t := range sorted {
		t.WithSeq(int64(i))
	}
	return &Relation{schema: schema, rows: sorted, indexes: map[int]map[string][]*tuple.Tuple{}}
}

// Schema returns the relation schema.
func (r *Relation) Schema() *tuple.Schema { return r.schema }

// Cardinality returns the number of rows.
func (r *Relation) Cardinality() int { return len(r.rows) }

// Row returns the i'th row in score order.
func (r *Relation) Row(i int) *tuple.Tuple { return r.rows[i] }

// Rows returns the backing slice (callers must not mutate).
func (r *Relation) Rows() []*tuple.Tuple { return r.rows }

// MaxScore returns the highest score (the first row's), or
// tuple.NeutralScore when the relation is empty or score-less.
func (r *Relation) MaxScore() float64 {
	if len(r.rows) == 0 || !r.schema.HasScore() {
		return tuple.NeutralScore
	}
	return r.rows[0].Score()
}

// Lookup returns the rows whose col equals v, via a lazily-built hash index.
func (r *Relation) Lookup(col int, v tuple.Value) []*tuple.Tuple {
	r.mu.Lock()
	idx, ok := r.indexes[col]
	if !ok {
		idx = make(map[string][]*tuple.Tuple)
		for _, t := range r.rows {
			k := t.Val(col).Key()
			idx[k] = append(idx[k], t)
		}
		r.indexes[col] = idx
	}
	r.mu.Unlock()
	return idx[v.Key()]
}

// DistinctCount returns the number of distinct values in col (computed on
// demand through the same index the probes use).
func (r *Relation) DistinctCount(col int) int {
	r.mu.Lock()
	idx, ok := r.indexes[col]
	r.mu.Unlock()
	if !ok {
		if len(r.rows) == 0 {
			return 0
		}
		r.Lookup(col, r.rows[0].Val(col)) // force index build
		r.mu.Lock()
		idx = r.indexes[col]
		r.mu.Unlock()
	}
	return len(idx)
}

// Store is a named collection of relations: one simulated database instance.
type Store struct {
	name string

	mu        sync.Mutex
	relations map[string]*Relation
	loaders   map[string]func() *Relation
}

// NewStore creates an empty database instance with the given name.
func NewStore(name string) *Store {
	return &Store{name: name, relations: map[string]*Relation{}, loaders: map[string]func() *Relation{}}
}

// Name returns the database instance name.
func (s *Store) Name() string { return s.name }

// Put registers a materialised relation.
func (s *Store) Put(rel *Relation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.relations[rel.Schema().Name()] = rel
}

// PutLazy registers a loader invoked on first access — the GUS workload
// declares 358 relations but only materialises those a run touches.
func (s *Store) PutLazy(name string, load func() *Relation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loaders[name] = load
}

// Relation returns the named relation, materialising it if lazy.
func (s *Store) Relation(name string) (*Relation, error) {
	s.mu.Lock()
	if rel, ok := s.relations[name]; ok {
		s.mu.Unlock()
		return rel, nil
	}
	load, ok := s.loaders[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("relationdb: %s has no relation %q", s.name, name)
	}
	rel := load()
	s.mu.Lock()
	s.relations[rel.Schema().Name()] = rel
	s.mu.Unlock()
	return rel, nil
}

// MustRelation is Relation for trusted callers.
func (s *Store) MustRelation(name string) *Relation {
	rel, err := s.Relation(name)
	if err != nil {
		panic(err)
	}
	return rel
}

// Has reports whether the store knows the relation (materialised or lazy).
func (s *Store) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.relations[name]; ok {
		return true
	}
	_, ok := s.loaders[name]
	return ok
}

// Names returns all relation names (materialised and lazy), sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := map[string]bool{}
	for n := range s.relations {
		set[n] = true
	}
	for n := range s.loaders {
		set[n] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
