package relationdb

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/tuple"
)

func scoredSchema() *tuple.Schema {
	return tuple.NewSchema("R",
		tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
		tuple.Column{Name: "fk", Type: tuple.KindInt},
		tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
	)
}

func buildRelation(n int, seed uint64) *Relation {
	s := scoredSchema()
	rng := dist.New(seed)
	rows := make([]*tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, tuple.New(s,
			tuple.Int(int64(i)),
			tuple.Int(int64(rng.Intn(10))),
			tuple.Float(rng.Float64()),
		))
	}
	return NewRelation(s, rows)
}

func TestRelationSortedByScore(t *testing.T) {
	r := buildRelation(500, 1)
	prev := 2.0
	for i := 0; i < r.Cardinality(); i++ {
		row := r.Row(i)
		if row.Score() > prev {
			t.Fatalf("rows not in nonincreasing score order at %d", i)
		}
		prev = row.Score()
		if row.Seq() != int64(i) {
			t.Fatalf("seq not assigned: row %d has seq %d", i, row.Seq())
		}
	}
	if r.MaxScore() != r.Row(0).Score() {
		t.Errorf("MaxScore = %v, want first row's %v", r.MaxScore(), r.Row(0).Score())
	}
}

func TestRelationTieBreakDeterministic(t *testing.T) {
	s := scoredSchema()
	rows := []*tuple.Tuple{
		tuple.New(s, tuple.Int(3), tuple.Int(0), tuple.Float(0.5)),
		tuple.New(s, tuple.Int(1), tuple.Int(0), tuple.Float(0.5)),
		tuple.New(s, tuple.Int(2), tuple.Int(0), tuple.Float(0.5)),
	}
	r1 := NewRelation(s, rows)
	r2 := NewRelation(s, []*tuple.Tuple{rows[2], rows[0], rows[1]})
	for i := 0; i < 3; i++ {
		if !r1.Row(i).Key().Equal(r2.Row(i).Key()) {
			t.Fatal("tie order not deterministic across input orders")
		}
	}
}

func TestLookup(t *testing.T) {
	r := buildRelation(300, 2)
	// Count fk=5 by scan, compare with Lookup.
	want := 0
	for _, row := range r.Rows() {
		if row.Val(1).AsInt() == 5 {
			want++
		}
	}
	got := r.Lookup(1, tuple.Int(5))
	if len(got) != want {
		t.Errorf("Lookup(fk=5) = %d rows, want %d", len(got), want)
	}
	for _, row := range got {
		if row.Val(1).AsInt() != 5 {
			t.Error("Lookup returned non-matching row")
		}
	}
	if len(r.Lookup(1, tuple.Int(999))) != 0 {
		t.Error("Lookup of absent value should be empty")
	}
}

func TestDistinctCount(t *testing.T) {
	r := buildRelation(300, 3)
	if d := r.DistinctCount(0); d != 300 {
		t.Errorf("distinct keys = %d", d)
	}
	if d := r.DistinctCount(1); d < 1 || d > 10 {
		t.Errorf("distinct fks = %d", d)
	}
}

func TestScorelessRelation(t *testing.T) {
	s := tuple.NewSchema("P", tuple.Column{Name: "a", Type: tuple.KindInt, Key: true})
	r := NewRelation(s, []*tuple.Tuple{tuple.New(s, tuple.Int(1)), tuple.New(s, tuple.Int(2))})
	if r.MaxScore() != tuple.NeutralScore {
		t.Errorf("score-less MaxScore = %v", r.MaxScore())
	}
}

func TestEmptyRelation(t *testing.T) {
	r := NewRelation(scoredSchema(), nil)
	if r.Cardinality() != 0 || r.MaxScore() != tuple.NeutralScore {
		t.Error("empty relation basics")
	}
	if r.DistinctCount(0) != 0 {
		t.Error("empty distinct")
	}
}

func TestStoreLazyMaterialisation(t *testing.T) {
	st := NewStore("db1")
	calls := 0
	st.PutLazy("R", func() *Relation {
		calls++
		return buildRelation(10, 4)
	})
	if !st.Has("R") || st.Has("S") {
		t.Error("Has wrong")
	}
	r1, err := st.Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	r2 := st.MustRelation("R")
	if r1 != r2 {
		t.Error("lazy relation should be cached")
	}
	if calls != 1 {
		t.Errorf("loader called %d times", calls)
	}
	if _, err := st.Relation("missing"); err == nil {
		t.Error("missing relation should error")
	}
}

func TestStoreNames(t *testing.T) {
	st := NewStore("db")
	st.Put(buildRelation(5, 5))
	st.PutLazy("Z", func() *Relation { return buildRelation(5, 6) })
	names := st.Names()
	if len(names) != 2 || names[0] != "R" || names[1] != "Z" {
		t.Errorf("names = %v", names)
	}
	if st.Name() != "db" {
		t.Error("store name")
	}
}
