// Package costmodel prices candidate input assignments for the multi-query
// optimizer (§5.1.2). The model follows the paper's accounting: the dominant
// costs are (1) tuples streamed from remote sources into the middleware —
// paid once per input no matter how many conjunctive queries consume it —
// (2) remote random-access probes, and (3) in-memory join work; and top-k
// execution only reads a prefix of each stream, whose expected depth comes
// from the depth-estimation approach of [16,29] via the catalog. Tuples that
// earlier executions already buffered are free (§6.1 "updated cost
// estimates").
package costmodel

import (
	"math"
	"sync"

	"repro/internal/catalog"
	"repro/internal/cq"
)

// Params holds the per-operation prices and tuning constants. Prices are in
// abstract cost units; the defaults mirror the experiment delay model (2 ms
// remote operations vs microsecond joins).
type Params struct {
	// StreamCost prices reading one tuple from a streaming source.
	StreamCost float64
	// ProbeCost prices one remote random-access probe.
	ProbeCost float64
	// JoinCost prices one in-memory access-module operation.
	JoinCost float64
	// Tau is τ(R) (§5.1.1): score-less relations with cardinality below Tau
	// may still be streamed; larger ones must be probed.
	Tau float64
}

// DefaultParams returns prices matching the §7 delay model.
func DefaultParams() Params {
	return Params{StreamCost: 2000, ProbeCost: 2000, JoinCost: 5, Tau: 150}
}

// Mode says how an input is accessed (§3).
type Mode int

const (
	// Stream reads the input in nonincreasing score order.
	Stream Mode = iota
	// Probe performs random access by join-key value.
	Probe
)

// String returns "stream" or "probe".
func (m Mode) String() string {
	if m == Probe {
		return "probe"
	}
	return "stream"
}

// Input is one element of an input assignment (I, I): a subexpression
// evaluated at a source, with the queries that consume it.
type Input struct {
	// Expr is the canonical pushed-down expression.
	Expr *cq.Expr
	// Mode is the access path.
	Mode Mode
	// DB is the owning database instance.
	DB string
	// Uses maps consuming CQ id -> occurrence (atom mapping) in that query.
	Uses map[string]*cq.ExprOccurrence
}

// Model prices assignments against a catalog. It memoises each query's full
// expression (canonicalization is costly and BestPlan calls the cost function
// exponentially often). The memo is lock-protected: under the parallel
// executor, one admission optimizes its independent query groups
// concurrently against the one shared model (the memo is keyed by CQ id, so
// concurrent fills are distinct entries and the cache stays deterministic).
type Model struct {
	Cat    *catalog.Catalog
	Params Params

	mu       sync.RWMutex
	fullExpr map[string]*cq.Expr // by CQ id
}

// New builds a cost model.
func New(cat *catalog.Catalog, p Params) *Model {
	return &Model{Cat: cat, Params: p, fullExpr: map[string]*cq.Expr{}}
}

// FullExpr returns (and caches) the canonical expression of a whole query.
func (m *Model) FullExpr(q *cq.CQ) *cq.Expr {
	m.mu.RLock()
	e, ok := m.fullExpr[q.ID]
	m.mu.RUnlock()
	if ok {
		return e
	}
	e, _ = q.SubExpr(allIdx(len(q.Atoms)))
	m.mu.Lock()
	m.fullExpr[q.ID] = e
	m.mu.Unlock()
	return e
}

// ChooseMode applies §5.1.1's streaming rule: relations (or pushed-down
// expressions) without scoring attributes are probed rather than streamed —
// reading them as a stream cannot tighten thresholds, so the whole relation
// would be read — unless their cardinality is under τ(R). Multi-atom
// expressions are always streamed (our random-access wrappers probe base
// relations only).
func (m *Model) ChooseMode(e *cq.Expr) Mode {
	if !e.SingleAtom() {
		return Stream
	}
	st, err := m.Cat.Relation(e.Atoms[0].Rel)
	if err != nil {
		return Stream
	}
	hasConst := false
	for _, t := range e.Atoms[0].Args {
		if t.IsConst() {
			hasConst = true
		}
	}
	if st.HasScore {
		return Stream
	}
	card := st.Card
	if hasConst {
		card = m.Cat.EstimateCard(e)
	}
	if card < m.Params.Tau {
		return Stream
	}
	return Probe
}

// StreamDepth estimates how many tuples of input e a top-k execution reads,
// when the input feeds the given queries. Each consuming query needs roughly
// k of its results; if the query is expected to produce 'results' rows total
// from 'card' input rows of this stream, the needed prefix is
// card·(k/results)^(1/s) with s the query's number of streamed inputs —
// the multiplicative depth sharing of [16,29]. The input's depth is the max
// over its consumers (it is read once, at the fastest consumer's rate).
func (m *Model) StreamDepth(e *cq.Expr, uses map[string]*cq.ExprOccurrence, k int, streamsPerCQ map[string]int) float64 {
	card := math.Max(m.Cat.EstimateCard(e), 1)
	depth := 0.0
	for cqID, occ := range uses {
		full := m.FullExpr(occ.CQ)
		results := math.Max(m.Cat.EstimateCard(full), 1)
		frac := math.Min(1, float64(k)/results)
		s := float64(streamsPerCQ[cqID])
		if s < 1 {
			s = 1
		}
		d := card * math.Pow(frac, 1/s)
		if d < float64(k) {
			d = math.Min(float64(k), card)
		}
		if d > depth {
			depth = d
		}
	}
	return math.Min(depth, card)
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// StreamRebuildCost estimates what re-deriving an evicted stream source's
// retained prefix would cost: every already-delivered tuple must be
// re-streamed from the remote source (§6.3 — the loss a discard eviction
// realizes and a spill eviction avoids).
func (m *Model) StreamRebuildCost(tuples int) float64 {
	return float64(tuples) * m.Params.StreamCost
}

// JoinRebuildCost estimates re-deriving an evicted m-join's retained state:
// its module and log rows are recomputed by in-memory join work from the
// surviving upstream logs.
func (m *Model) JoinRebuildCost(rows int) float64 {
	return float64(rows) * m.Params.JoinCost
}

// Scratch holds AssignmentCost's working maps so a caller that prices
// assignments in a tight loop (the plan search calls it at every leaf) can
// reuse them instead of allocating three maps per call. A Scratch must not
// be shared across goroutines.
type Scratch struct {
	streams map[string]int
	depths  map[string]float64
	byCQ    map[string][]*Input
}

// NewScratch builds an empty reusable Scratch.
func NewScratch() *Scratch {
	return &Scratch{
		streams: map[string]int{},
		depths:  map[string]float64{},
		byCQ:    map[string][]*Input{},
	}
}

// AssignmentCost prices a complete, valid input assignment for query set qs
// with per-query result target k.
//
//	cost = Σ_streams (depth − alreadyBuffered)·StreamCost            (shared)
//	     + Σ_queries Σ_probedInputs probes·ProbeCost                 (per CQ)
//	     + Σ_queries joinWork·JoinCost
func (m *Model) AssignmentCost(qs []*cq.CQ, inputs []*Input, k int) float64 {
	return m.AssignmentCostScratch(qs, inputs, k, NewScratch())
}

// AssignmentCostScratch is AssignmentCost with caller-owned working state;
// the result is identical for any Scratch contents.
func (m *Model) AssignmentCostScratch(qs []*cq.CQ, inputs []*Input, k int, sc *Scratch) float64 {
	// Count streamed inputs per CQ (for depth estimation).
	streamsPerCQ := sc.streams
	clear(streamsPerCQ)
	for _, in := range inputs {
		if in.Mode != Stream {
			continue
		}
		for cqID := range in.Uses {
			streamsPerCQ[cqID]++
		}
	}
	total := 0.0
	depths := sc.depths
	clear(depths)
	for _, in := range inputs {
		if in.Mode != Stream {
			continue
		}
		depth := m.StreamDepth(in.Expr, in.Uses, k, streamsPerCQ)
		depths[in.Expr.Key()] = depth
		free := float64(m.Cat.StreamedSoFar(in.Expr.Key()))
		eff := math.Max(0, depth-free)
		total += eff * m.Params.StreamCost
	}
	// Per-query probe and join work. Buckets are truncated, not deleted, so
	// steady-state reuse appends into retained capacity.
	byCQ := sc.byCQ
	for id, v := range byCQ {
		byCQ[id] = v[:0]
	}
	for _, in := range inputs {
		for cqID := range in.Uses {
			byCQ[cqID] = append(byCQ[cqID], in)
		}
	}
	for _, q := range qs {
		ins := byCQ[q.ID]
		streamed := 0.0
		for _, in := range ins {
			if in.Mode == Stream {
				streamed += depths[in.Expr.Key()]
			}
		}
		for _, in := range ins {
			if in.Mode == Probe {
				// Every streamed tuple drives roughly one probe into each
				// random-access input (probe caching deduplicates repeats).
				distinct := math.Max(m.Cat.EstimateCard(in.Expr), 1)
				probes := math.Min(streamed, distinct)
				total += probes * m.Params.ProbeCost
			}
		}
		if len(ins) > 1 {
			total += streamed * float64(len(ins)-1) * m.Params.JoinCost
		}
	}
	return total
}
