package costmodel

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/relationdb"
	"repro/internal/scoring"
	"repro/internal/tuple"
)

func fixtureModel(t *testing.T) *Model {
	t.Helper()
	cat := catalog.New()
	mk := func(name string, card int, scored bool) {
		cols := []tuple.Column{
			{Name: "a", Type: tuple.KindInt},
			{Name: "b", Type: tuple.KindInt},
		}
		if scored {
			cols = append(cols, tuple.Column{Name: "s", Type: tuple.KindFloat, Score: true})
		}
		s := tuple.NewSchema(name, cols...)
		rng := dist.New(uint64(card))
		var rows []*tuple.Tuple
		for i := 0; i < card; i++ {
			vals := []tuple.Value{tuple.Int(int64(i)), tuple.Int(int64(rng.Intn(card)))}
			if scored {
				vals = append(vals, tuple.Float(rng.Float64()))
			}
			rows = append(rows, tuple.New(s, vals...))
		}
		cat.AddRelation("db", relationdb.NewRelation(s, rows))
	}
	mk("Scored", 1000, true)
	mk("Small", 50, false)
	mk("BigPlain", 5000, false)
	return New(cat, DefaultParams())
}

func atomExpr(rel string, scored bool) *cq.Expr {
	args := []cq.Term{cq.V(0), cq.V(1)}
	if scored {
		args = append(args, cq.V(2))
	}
	q := &cq.CQ{ID: "x", Atoms: []*cq.Atom{{Rel: rel, DB: "db", Args: args}}, Model: scoring.Discover(1)}
	e, _ := q.SubExpr([]int{0})
	return e
}

func TestChooseMode(t *testing.T) {
	m := fixtureModel(t)
	if m.ChooseMode(atomExpr("Scored", true)) != Stream {
		t.Error("scored relation should stream")
	}
	if m.ChooseMode(atomExpr("Small", false)) != Stream {
		t.Error("small score-less relation should stream (τ rule)")
	}
	if m.ChooseMode(atomExpr("BigPlain", false)) != Probe {
		t.Error("large score-less relation should probe")
	}
}

func TestStreamDepthBounds(t *testing.T) {
	m := fixtureModel(t)
	e := atomExpr("Scored", true)
	q := &cq.CQ{ID: "q", Atoms: []*cq.Atom{
		{Rel: "Scored", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(2)}},
		{Rel: "Small", DB: "db", Args: []cq.Term{cq.V(1), cq.V(3)}},
	}, Model: scoring.Discover(2)}
	occ := &cq.ExprOccurrence{CQ: q, AtomOf: []int{0}}
	d := m.StreamDepth(e, map[string]*cq.ExprOccurrence{"q": occ}, 50, map[string]int{"q": 2})
	if d < 50 || d > 1000 {
		t.Errorf("depth %v out of [k, card]", d)
	}
	// Larger k demands deeper reads.
	d2 := m.StreamDepth(e, map[string]*cq.ExprOccurrence{"q": occ}, 500, map[string]int{"q": 2})
	if d2 < d {
		t.Errorf("depth must grow with k: %v -> %v", d, d2)
	}
}

func TestAssignmentCostMonotoneInReuse(t *testing.T) {
	m := fixtureModel(t)
	q := &cq.CQ{ID: "q", Atoms: []*cq.Atom{
		{Rel: "Scored", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(2)}},
		{Rel: "Small", DB: "db", Args: []cq.Term{cq.V(1), cq.V(3)}},
	}, Model: scoring.Discover(2)}
	e1 := atomExpr("Scored", true)
	e2 := atomExpr("Small", false)
	occ1 := &cq.ExprOccurrence{CQ: q, AtomOf: []int{0}}
	occ2 := &cq.ExprOccurrence{CQ: q, AtomOf: []int{1}}
	inputs := []*Input{
		{Expr: e1, Mode: Stream, DB: "db", Uses: map[string]*cq.ExprOccurrence{"q": occ1}},
		{Expr: e2, Mode: Stream, DB: "db", Uses: map[string]*cq.ExprOccurrence{"q": occ2}},
	}
	cold := m.AssignmentCost([]*cq.CQ{q}, inputs, 50)
	m.Cat.RecordStreamed(e1.Key(), 1<<20)
	warm := m.AssignmentCost([]*cq.CQ{q}, inputs, 50)
	if warm >= cold {
		t.Errorf("buffered input did not lower cost: %v -> %v", cold, warm)
	}
}

func TestProbeCostCharged(t *testing.T) {
	m := fixtureModel(t)
	q := &cq.CQ{ID: "q", Atoms: []*cq.Atom{
		{Rel: "Scored", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(2)}},
		{Rel: "BigPlain", DB: "db", Args: []cq.Term{cq.V(1), cq.V(3)}},
	}, Model: scoring.Discover(2)}
	e1 := atomExpr("Scored", true)
	e2 := atomExpr("BigPlain", false)
	occ1 := &cq.ExprOccurrence{CQ: q, AtomOf: []int{0}}
	occ2 := &cq.ExprOccurrence{CQ: q, AtomOf: []int{1}}
	withProbe := m.AssignmentCost([]*cq.CQ{q}, []*Input{
		{Expr: e1, Mode: Stream, DB: "db", Uses: map[string]*cq.ExprOccurrence{"q": occ1}},
		{Expr: e2, Mode: Probe, DB: "db", Uses: map[string]*cq.ExprOccurrence{"q": occ2}},
	}, 50)
	streamOnly := m.AssignmentCost([]*cq.CQ{q}, []*Input{
		{Expr: e1, Mode: Stream, DB: "db", Uses: map[string]*cq.ExprOccurrence{"q": occ1}},
	}, 50)
	if withProbe <= streamOnly {
		t.Errorf("probe input added no cost: %v vs %v", withProbe, streamOnly)
	}
}

func TestModeString(t *testing.T) {
	if Stream.String() != "stream" || Probe.String() != "probe" {
		t.Error("mode strings")
	}
}

func TestFullExprCached(t *testing.T) {
	m := fixtureModel(t)
	q := &cq.CQ{ID: "q", Atoms: []*cq.Atom{
		{Rel: "Scored", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(2)}},
	}, Model: scoring.Discover(1)}
	if m.FullExpr(q) != m.FullExpr(q) {
		t.Error("FullExpr not cached")
	}
}
