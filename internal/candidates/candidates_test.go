package candidates_test

import (
	"testing"

	"repro/internal/candidates"
	"repro/internal/dist"
	"repro/internal/workload"
)

// The bio workload (Figure 1) doubles as the generation fixture: it has
// multi-database relations, synonym detours and a content keyword index.
func bioCfg(t *testing.T) (candidates.Config, *workload.Workload) {
	t.Helper()
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	return candidates.Config{
		Graph:             w.Schema,
		Catalog:           w.Catalog,
		MatchesPerKeyword: 2,
		MaxAtoms:          7,
		MaxPathLen:        4,
		PathVariants:      2,
		MaxCQs:            8,
		Family:            candidates.FamilyQSystem,
	}, w
}

func TestGenerateConnectsAllKeywords(t *testing.T) {
	cfg, _ := bioCfg(t)
	uq, err := candidates.Generate(cfg, "UQt", []string{"protein", "plasma membrane", "gene"}, 20, dist.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(uq.CQs) == 0 || len(uq.CQs) > cfg.MaxCQs {
		t.Fatalf("CQs = %d", len(uq.CQs))
	}
	for _, q := range uq.CQs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s invalid: %v", q.ID, err)
		}
		// Every keyword's match must appear: selections for the content
		// matches on TP/UP (protein), T (plasma membrane), GI (gene).
		sawSel := 0
		for _, a := range q.Atoms {
			for _, term := range a.Args {
				if term.IsConst() {
					sawSel++
				}
			}
		}
		if sawSel < 3 {
			t.Errorf("%s has %d selections, want one per keyword: %s", q.ID, sawSel, q)
		}
	}
}

func TestGenerateRankedByUpperBound(t *testing.T) {
	cfg, w := bioCfg(t)
	uq, err := candidates.Generate(cfg, "UQt", []string{"protein", "metabolism"}, 10, dist.New(2))
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, q := range uq.CQs {
		u := candidates.UpperBound(w.Catalog, q)
		if u > prev+1e-12 {
			t.Errorf("CQs not in nonincreasing U order: %v after %v", u, prev)
		}
		prev = u
	}
}

func TestGenerateDedupsCandidates(t *testing.T) {
	cfg, _ := bioCfg(t)
	uq, err := candidates.Generate(cfg, "UQt", []string{"membrane", "gene"}, 10, dist.New(3))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, q := range uq.CQs {
		e, _ := q.SubExpr(allIdxT(len(q.Atoms)))
		if seen[e.Key()] {
			t.Errorf("duplicate candidate network %s", e.Key())
		}
		seen[e.Key()] = true
	}
}

func TestGenerateUnknownKeyword(t *testing.T) {
	cfg, _ := bioCfg(t)
	if _, err := candidates.Generate(cfg, "UQt", []string{"quasiparticle"}, 10, dist.New(4)); err == nil {
		t.Error("unmatched keyword should error")
	}
	if _, err := candidates.Generate(cfg, "UQt", nil, 10, dist.New(4)); err == nil {
		t.Error("empty keywords should error")
	}
}

func TestGenerateModelFamilies(t *testing.T) {
	cfg, _ := bioCfg(t)
	for _, fam := range []candidates.Family{candidates.FamilyQSystem, candidates.FamilyDiscover, candidates.FamilyBANKS} {
		cfg.Family = fam
		uq, err := candidates.Generate(cfg, "UQt", []string{"metabolism", "gene"}, 10, dist.New(5))
		if err != nil {
			t.Fatalf("family %d: %v", fam, err)
		}
		for _, q := range uq.CQs {
			if q.Model == nil || q.Model.Arity() != len(q.Atoms) {
				t.Fatalf("family %d produced bad model", fam)
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	cfg, _ := bioCfg(t)
	a, err := candidates.Generate(cfg, "UQt", []string{"metabolism", "gene"}, 10, dist.New(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := candidates.Generate(cfg, "UQt", []string{"metabolism", "gene"}, 10, dist.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.CQs) != len(b.CQs) {
		t.Fatal("nondeterministic CQ count")
	}
	for i := range a.CQs {
		if a.CQs[i].String() != b.CQs[i].String() {
			t.Fatal("nondeterministic CQ")
		}
	}
}

func allIdxT(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
