// Package candidates converts keyword queries into ranked lists of
// conjunctive queries (candidate networks) over the schema graph — the query
// generation stage the paper assumes as its front end (§3: "we assume a set
// of conjunctive queries for each search, generated using any of the methods
// cited in Section 2.1"). The generator follows the DISCOVER/Q System recipe:
//
//  1. match each keyword against relation names/metadata and the content
//     inverted index, keeping the best-scoring matches;
//  2. for each combination of matches (one relation per keyword), search the
//     schema graph for join trees connecting the matched relations,
//     enumerating alternative linking paths (e.g. CQ1 joins through
//     TblProtein⋈Entry2Meth while CQ2 links through RecordLink — Table 1);
//  3. map every tree to a conjunctive query: one atom per relation, join
//     predicates from the traversed edges, selection constants from content
//     matches; and
//  4. attach the user's scoring model and rank the queries by their score
//     upper bound U(C), truncating to MaxCQs.
package candidates

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/schemagraph"
	"repro/internal/scoring"
	"repro/internal/tuple"
)

// Family selects the scoring model attached to generated queries (§2.1).
type Family int

const (
	// FamilyQSystem uses the Q System product model with learned edge costs.
	FamilyQSystem Family = iota
	// FamilyDiscover uses the DISCOVER sum model.
	FamilyDiscover
	// FamilyBANKS uses the BANKS-style weighted-sum model.
	FamilyBANKS
)

// Config parameterises generation.
type Config struct {
	// Graph is the schema graph with its keyword index.
	Graph *schemagraph.Graph
	// Catalog supplies per-relation score maxima for ranking by U(C).
	Catalog *catalog.Catalog
	// MatchesPerKeyword bounds how many keyword matches seed combinations.
	MatchesPerKeyword int
	// MaxAtoms bounds candidate-network size (query "size" in DISCOVER).
	MaxAtoms int
	// MaxPathLen bounds the length (in edges) of any linking path.
	MaxPathLen int
	// PathVariants bounds alternative linking paths tried per attachment.
	PathVariants int
	// Beam bounds partial join trees kept during tree growth.
	Beam int
	// MaxCQs truncates the ranked CQ list (the paper's workloads cap at 20).
	MaxCQs int
	// Family selects the scoring model.
	Family Family
}

// Defaults fills zero fields with the values used throughout §7.
func (c Config) Defaults() Config {
	if c.MatchesPerKeyword == 0 {
		c.MatchesPerKeyword = 3
	}
	if c.MaxAtoms == 0 {
		c.MaxAtoms = 7
	}
	if c.MaxPathLen == 0 {
		c.MaxPathLen = 3
	}
	if c.PathVariants == 0 {
		c.PathVariants = 3
	}
	if c.Beam == 0 {
		c.Beam = 8
	}
	if c.MaxCQs == 0 {
		c.MaxCQs = 20
	}
	return c
}

// Generate builds the user query for a keyword search. userRNG draws the
// per-user Zipfian coefficients on the scoring function (§7: "coefficients on
// the score functions for the various user queries were drawn from a Zipfian
// distribution"); pass a fixed-seed RNG per user for reproducibility.
func Generate(cfg Config, uqID string, keywords []string, k int, userRNG *dist.RNG) (*cq.UQ, error) {
	cfg = cfg.Defaults()
	if len(keywords) == 0 {
		return nil, fmt.Errorf("candidates: empty keyword query")
	}
	matchSets := make([][]schemagraph.Match, len(keywords))
	for i, kw := range keywords {
		ms := cfg.Graph.Lookup(kw)
		if len(ms) == 0 {
			return nil, fmt.Errorf("candidates: keyword %q matches nothing", kw)
		}
		if len(ms) > cfg.MatchesPerKeyword {
			ms = ms[:cfg.MatchesPerKeyword]
		}
		matchSets[i] = ms
	}
	// Per-user scoring coefficients: Zipfian ranks mapped into (0.5, 1].
	coefZipf := dist.NewZipf(userRNG, 8, 1.0)
	coefFor := func() float64 { return 1.0 - 0.5*float64(coefZipf.Next())/8.0 }

	seen := map[string]bool{}
	var generated []*cq.CQ
	for _, combo := range combinations(matchSets) {
		trees := buildTrees(cfg, combo)
		for _, tr := range trees {
			q := treeToCQ(cfg, tr, combo, uqID, len(generated), coefFor)
			if q == nil {
				continue
			}
			expr, _ := q.SubExpr(allIndexes(len(q.Atoms)))
			if seen[expr.Key()] {
				continue
			}
			seen[expr.Key()] = true
			generated = append(generated, q)
		}
	}
	if len(generated) == 0 {
		return nil, fmt.Errorf("candidates: no candidate network connects %v", keywords)
	}
	// Rank by nonincreasing score upper bound U(C) (§3).
	type ranked struct {
		q *cq.CQ
		u float64
	}
	rs := make([]ranked, len(generated))
	for i, q := range generated {
		rs[i] = ranked{q, UpperBound(cfg.Catalog, q)}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].u > rs[j].u })
	if len(rs) > cfg.MaxCQs {
		rs = rs[:cfg.MaxCQs]
	}
	out := make([]*cq.CQ, len(rs))
	for i, r := range rs {
		out[i] = r.q
		out[i].ID = fmt.Sprintf("%s.CQ%d", uqID, i+1)
	}
	return &cq.UQ{ID: uqID, Keywords: keywords, K: k, CQs: out}, nil
}

// UpperBound computes U(C): the query's score with every atom at its
// relation's maximum score (§3).
func UpperBound(cat *catalog.Catalog, q *cq.CQ) float64 {
	maxima := make([]float64, len(q.Atoms))
	for i, a := range q.Atoms {
		maxima[i] = cat.MaxScoreOf(a.Rel)
	}
	return q.Model.MaxScore(maxima)
}

func allIndexes(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// combinations enumerates one match per keyword (cartesian product, in
// deterministic order, capped to keep generation tractable).
func combinations(sets [][]schemagraph.Match) [][]schemagraph.Match {
	const capCombos = 24
	out := [][]schemagraph.Match{{}}
	for _, set := range sets {
		var next [][]schemagraph.Match
		for _, prefix := range out {
			for _, m := range set {
				combo := append(append([]schemagraph.Match(nil), prefix...), m)
				next = append(next, combo)
				if len(next) >= capCombos {
					break
				}
			}
			if len(next) >= capCombos {
				break
			}
		}
		out = next
	}
	return out
}

// tree is a partial candidate network: relations plus traversed edges.
type tree struct {
	rels  []string // insertion order
	has   map[string]bool
	edges []*schemagraph.Edge
	cost  float64
}

func (t *tree) clone() *tree {
	nt := &tree{
		rels:  append([]string(nil), t.rels...),
		has:   make(map[string]bool, len(t.has)),
		edges: append([]*schemagraph.Edge(nil), t.edges...),
		cost:  t.cost,
	}
	for r := range t.has {
		nt.has[r] = true
	}
	return nt
}

// buildTrees grows join trees connecting the matched relations with beam
// search over alternative linking paths.
func buildTrees(cfg Config, combo []schemagraph.Match) []*tree {
	seedRel := combo[0].Rel
	beam := []*tree{{rels: []string{seedRel}, has: map[string]bool{seedRel: true}}}
	for _, m := range combo[1:] {
		var next []*tree
		for _, t := range beam {
			if t.has[m.Rel] {
				next = append(next, t)
				continue
			}
			paths := linkingPaths(cfg, t, m.Rel)
			for _, p := range paths {
				nt := t.clone()
				ok := true
				for _, e := range p {
					// e goes from inside the tree outward.
					if !nt.has[e.To] {
						nt.rels = append(nt.rels, e.To)
						nt.has[e.To] = true
					}
					nt.edges = append(nt.edges, e)
					nt.cost += e.Cost
					if len(nt.rels) > cfg.MaxAtoms {
						ok = false
						break
					}
				}
				if ok {
					next = append(next, nt)
				}
			}
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].cost < next[j].cost })
		if len(next) > cfg.Beam {
			next = next[:cfg.Beam]
		}
		beam = next
		if len(beam) == 0 {
			return nil
		}
	}
	return beam
}

// linkingPaths finds up to PathVariants simple paths from any tree relation
// to the target relation, cheapest first, each at most MaxPathLen edges.
func linkingPaths(cfg Config, t *tree, target string) [][]*schemagraph.Edge {
	type state struct {
		rel  string
		path []*schemagraph.Edge
		cost float64
	}
	var found []state
	var dfs func(s state, visited map[string]bool)
	dfs = func(s state, visited map[string]bool) {
		if len(found) >= cfg.PathVariants*4 {
			return
		}
		if s.rel == target {
			found = append(found, s)
			return
		}
		if len(s.path) >= cfg.MaxPathLen {
			return
		}
		for _, e := range cfg.Graph.EdgesFrom(s.rel) {
			// Allow re-entering the tree only at the start; intermediate
			// nodes must be fresh so each relation appears once per CQ.
			if visited[e.To] || (t.has[e.To] && e.To != target) {
				continue
			}
			visited[e.To] = true
			dfs(state{rel: e.To, path: append(append([]*schemagraph.Edge(nil), s.path...), e), cost: s.cost + e.Cost}, visited)
			visited[e.To] = false
		}
	}
	for _, start := range t.rels {
		visited := map[string]bool{}
		for r := range t.has {
			visited[r] = true
		}
		dfs(state{rel: start}, visited)
	}
	sort.SliceStable(found, func(i, j int) bool {
		if found[i].cost != found[j].cost {
			return found[i].cost < found[j].cost
		}
		return len(found[i].path) < len(found[j].path)
	})
	var out [][]*schemagraph.Edge
	seen := map[string]bool{}
	for _, s := range found {
		sig := pathSig(s.path)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, s.path)
		if len(out) >= cfg.PathVariants {
			break
		}
	}
	return out
}

func pathSig(p []*schemagraph.Edge) string {
	sig := ""
	for _, e := range p {
		sig += fmt.Sprintf("%s>%s/%d-%d;", e.From, e.To, e.FromCol, e.ToCol)
	}
	return sig
}

// treeToCQ converts a join tree into a conjunctive query with its scoring
// model.
func treeToCQ(cfg Config, t *tree, combo []schemagraph.Match, uqID string, ordinal int, coefFor func() float64) *cq.CQ {
	// Assign each relation a contiguous variable block; unify across edges.
	varBase := map[string]int{}
	next := 0
	for _, r := range t.rels {
		n := cfg.Graph.Node(r)
		if n == nil {
			return nil
		}
		varBase[r] = next
		next += n.Schema.NumCols()
	}
	parent := make([]int, next)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range t.edges {
		union(varBase[e.From]+e.FromCol, varBase[e.To]+e.ToCol)
	}
	// Content-match selections: constant at the matched column.
	selections := map[string]map[int]tuple.Value{}
	for _, m := range combo {
		if m.Exact || m.Col < 0 {
			continue
		}
		if selections[m.Rel] == nil {
			selections[m.Rel] = map[int]tuple.Value{}
		}
		selections[m.Rel][m.Col] = tuple.String(m.Term)
	}
	atoms := make([]*cq.Atom, len(t.rels))
	weights := make([]float64, len(t.rels))
	edgeCostSum := t.cost
	staticMatch := 1.0
	for _, m := range combo {
		if m.Exact {
			staticMatch *= m.Score
		}
	}
	var headVars []int
	for i, r := range t.rels {
		n := cfg.Graph.Node(r)
		args := make([]cq.Term, n.Schema.NumCols())
		for ci := range args {
			if cv, ok := selections[r][ci]; ok {
				args[ci] = cq.C(cv)
				continue
			}
			args[ci] = cq.V(find(varBase[r] + ci))
		}
		atoms[i] = &cq.Atom{Rel: r, DB: n.DB, Args: args}
		weights[i] = coefFor()
		if kc := n.Schema.KeyCol(); kc >= 0 && !args[kc].IsConst() {
			headVars = append(headVars, args[kc].Var)
		}
	}
	var model *scoring.Model
	switch cfg.Family {
	case FamilyDiscover:
		model = scoring.Discover(len(atoms))
		for i := range model.Weights {
			model.Weights[i] *= weights[i]
		}
	case FamilyBANKS:
		model = scoring.BANKS(0.8, weights, 1/(1+edgeCostSum))
	default:
		authSum := 0.0
		for _, r := range t.rels {
			authSum += cfg.Graph.Node(r).Authority
		}
		model = scoring.QSystem(edgeCostSum+authSum, weights)
	}
	q := &cq.CQ{
		ID:       fmt.Sprintf("%s.cand%d", uqID, ordinal),
		UQID:     uqID,
		Atoms:    atoms,
		Model:    model,
		HeadVars: headVars,
	}
	if err := q.Validate(); err != nil {
		return nil
	}
	return q
}
