package exec

import (
	"fmt"
	"testing"

	"repro/internal/operator"
	"repro/internal/workload"
)

// runBio executes the Figure 1 scenario under a strategy.
func runBio(t *testing.T, strat Strategy) (*Report, *workload.Workload) {
	t.Helper()
	w, err := workload.Bio()
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	rep, err := Run(w.Fleet, w.Catalog, w.Submissions, Options{Strategy: strat, Seed: 1})
	if err != nil {
		t.Fatalf("run %v: %v", strat, err)
	}
	return rep, w
}

func resultKey(rs []operator.Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = fmt.Sprintf("%.9f|%s", r.Score, r.Row.Identity())
	}
	return out
}

func TestBioAllStrategiesAgree(t *testing.T) {
	var baseline map[string][]string
	for _, strat := range []Strategy{StrategyCQ, StrategyUQ, StrategyFull, StrategyCL} {
		rep, _ := runBio(t, strat)
		got := map[string][]string{}
		for _, u := range rep.UQs {
			if len(u.Results) == 0 {
				t.Fatalf("%v: %s produced no results", strat, u.UQ.ID)
			}
			if u.Duplicates != 0 {
				t.Errorf("%v: %s dropped %d duplicate rows", strat, u.UQ.ID, u.Duplicates)
			}
			got[u.UQ.ID] = resultKey(u.Results)
			// Results must be in nonincreasing score order.
			for i := 1; i < len(u.Results); i++ {
				if u.Results[i].Score > u.Results[i-1].Score+1e-12 {
					t.Errorf("%v: %s results out of order at %d: %.6f > %.6f",
						strat, u.UQ.ID, i, u.Results[i].Score, u.Results[i-1].Score)
				}
			}
		}
		if baseline == nil {
			baseline = got
			continue
		}
		for id, keys := range got {
			base := baseline[id]
			if len(base) != len(keys) {
				t.Fatalf("%v: %s returned %d results, baseline %d", strat, id, len(keys), len(base))
			}
			for i := range keys {
				if keys[i] != base[i] {
					t.Errorf("%v: %s result %d differs:\n  got  %s\n  want %s", strat, id, i, keys[i], base[i])
					break
				}
			}
		}
	}
}

func TestBioStateReuseSavesWork(t *testing.T) {
	// UQ3 refines UQ1 (Table 3): under ATC-FULL its conjunctive queries are
	// subexpressions of UQ1's, so reuse should leave the third query's
	// incremental stream reads well below a cold run's.
	w, err := workload.Bio()
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	full, err := Run(w.Fleet, w.Catalog, w.Submissions, Options{Strategy: StrategyFull, Seed: 1})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	cold, err := Run(w.Fleet, w.Catalog, w.Submissions[2:], Options{Strategy: StrategyFull, Seed: 1})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	warmTotal := full.Total().TuplesConsumed()
	coldUQ3 := cold.Total().TuplesConsumed()
	first2, err := Run(w.Fleet, w.Catalog, w.Submissions[:2], Options{Strategy: StrategyFull, Seed: 1})
	if err != nil {
		t.Fatalf("first2: %v", err)
	}
	warmUQ3 := warmTotal - first2.Total().TuplesConsumed()
	t.Logf("UQ3 tuples consumed: cold=%d warm=%d", coldUQ3, warmUQ3)
	if warmUQ3 >= coldUQ3 {
		t.Errorf("state reuse did not save work: warm=%d cold=%d", warmUQ3, coldUQ3)
	}
}
