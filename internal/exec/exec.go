// Package exec orchestrates complete runs: it maps user queries onto plan
// graphs according to the chosen sharing strategy (the four configurations of
// §7.1), drives each graph's ATC along the workload's arrival timeline —
// admitting batches mid-execution exactly as §6 grafts new queries into a
// running graph — and collects the per-query latencies and work counters the
// paper's figures report.
//
// Each plan graph is one middleware execution thread with its own virtual
// clock (see simclock): queries sharing a graph contend for that clock
// (ATC-FULL's §7.1 contention), while separate graphs run in parallel
// (ATC-CQ, ATC-UQ, ATC-CL).
package exec

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/mqo"
	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/qsm"
	"repro/internal/remotedb"
	"repro/internal/simclock"
)

// Strategy selects the sharing configuration (§7.1).
type Strategy int

const (
	// StrategyCQ: ATC-CQ — each user query optimized separately, no sharing
	// even among its own conjunctive queries.
	StrategyCQ Strategy = iota
	// StrategyUQ: ATC-UQ — sharing within a user query only.
	StrategyUQ
	// StrategyFull: ATC-FULL — one plan graph shared by every query.
	StrategyFull
	// StrategyCL: ATC-CL — user queries clustered (§6.1) into several
	// shared plan graphs.
	StrategyCL
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case StrategyCQ:
		return "ATC-CQ"
	case StrategyUQ:
		return "ATC-UQ"
	case StrategyFull:
		return "ATC-FULL"
	default:
		return "ATC-CL"
	}
}

// Options configures a run.
type Options struct {
	Strategy Strategy
	// BatchSize / BatchWindow configure the query batcher (§7.1 uses 5 and
	// the 6-second inter-arrival spread).
	BatchSize   int
	BatchWindow time.Duration
	// Opt configures the multi-query optimizer.
	Opt mqo.Config
	// CostParams prices the cost model (defaults match the delay model).
	CostParams costmodel.Params
	// Cluster tunes §6.1 clustering (StrategyCL).
	Cluster cluster.Config
	// MemoryBudget bounds per-graph state in rows (0 = unbounded).
	MemoryBudget int
	// Seed drives the delay distributions.
	Seed uint64
	// Delays overrides the §7 delay model when non-nil.
	Delays func(rng *dist.RNG) *simclock.DelayModel
	// ChargeOptimizer controls whether measured optimization wall time is
	// added to the virtual clock (the paper's timings include it, §7.4).
	// Disable for bit-deterministic latency tests.
	ChargeOptimizer bool
}

// Defaults fills zero values with the paper's experimental settings.
func (o Options) Defaults() Options {
	if o.BatchSize == 0 {
		o.BatchSize = 5
	}
	if o.BatchWindow == 0 {
		o.BatchWindow = 6 * time.Second
	}
	if o.CostParams == (costmodel.Params{}) {
		o.CostParams = costmodel.DefaultParams()
	}
	if o.Delays == nil {
		o.Delays = simclock.DefaultDelays
	}
	return o
}

// UQReport is one user query's outcome.
type UQReport struct {
	UQ          *cq.UQ
	GroupID     int
	Arrival     time.Duration
	Finished    time.Duration
	Results     []operator.Result
	ExecutedCQs int
	Duplicates  int
}

// Latency is the user query's response time.
func (r *UQReport) Latency() time.Duration { return r.Finished - r.Arrival }

// OptSample records one optimization round for Figure 11.
type OptSample struct {
	Candidates  int
	Wall        time.Duration
	SearchNodes int
}

// GroupReport summarises one plan graph's execution.
type GroupReport struct {
	GroupID   int
	Metrics   metrics.Snapshot
	Stats     plangraph.Stats
	Evictions int
	StateRows int
}

// Report is a complete run's outcome.
type Report struct {
	Strategy Strategy
	UQs      []*UQReport
	Groups   []*GroupReport
	Opt      []OptSample
}

// Total sums work across groups.
func (r *Report) Total() metrics.Snapshot {
	var t metrics.Snapshot
	for _, g := range r.Groups {
		t = t.Add(g.Metrics)
	}
	return t
}

// ByUQ returns the report for a user query id, or nil.
func (r *Report) ByUQ(id string) *UQReport {
	for _, u := range r.UQs {
		if u.UQ.ID == id {
			return u
		}
	}
	return nil
}

// Run executes the submissions against the fleet under the options. The
// query batcher runs first (batches of BatchSize over BatchWindow, §3); each
// released batch is split across the strategy's plan graphs and grafted into
// them, exactly as Figure 3's pipeline orders the components.
func Run(fleet *remotedb.Fleet, cat *catalog.Catalog, subs []batcher.Submission, opts Options) (*Report, error) {
	opts = opts.Defaults()
	b := &batcher.Batcher{Size: opts.BatchSize, Window: opts.BatchWindow}
	globalBatches, err := b.Plan(subs)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	groups := groupSubmissions(subs, opts)
	report := &Report{Strategy: opts.Strategy}
	for gi, gsubs := range groups {
		member := map[string]bool{}
		for _, s := range gsubs {
			member[s.UQ.ID] = true
		}
		var gb []batcher.Batch
		for _, batch := range globalBatches {
			var part []batcher.Submission
			for _, s := range batch.Submissions {
				if member[s.UQ.ID] {
					part = append(part, s)
				}
			}
			if len(part) > 0 {
				gb = append(gb, batcher.Batch{ReleasedAt: batch.ReleasedAt, Submissions: part})
			}
		}
		gr, uqReports, optSamples, err := runGroup(gi, fleet, cat, gb, opts)
		if err != nil {
			return nil, fmt.Errorf("exec: group %d: %w", gi, err)
		}
		report.Groups = append(report.Groups, gr)
		report.UQs = append(report.UQs, uqReports...)
		report.Opt = append(report.Opt, optSamples...)
	}
	sort.SliceStable(report.UQs, func(i, j int) bool { return report.UQs[i].Arrival < report.UQs[j].Arrival })
	return report, nil
}

// groupSubmissions maps user queries to plan graphs per the strategy.
func groupSubmissions(subs []batcher.Submission, opts Options) [][]batcher.Submission {
	switch opts.Strategy {
	case StrategyCQ, StrategyUQ:
		out := make([][]batcher.Submission, len(subs))
		for i, s := range subs {
			out[i] = []batcher.Submission{s}
		}
		return out
	case StrategyCL:
		uqs := make([]*cq.UQ, len(subs))
		at := map[string]batcher.Submission{}
		for i, s := range subs {
			uqs[i] = s.UQ
			at[s.UQ.ID] = s
		}
		clusters := cluster.Cluster(uqs, opts.Cluster)
		out := make([][]batcher.Submission, len(clusters))
		for ci, cuqs := range clusters {
			for _, uq := range cuqs {
				out[ci] = append(out[ci], at[uq.ID])
			}
			sort.SliceStable(out[ci], func(a, b int) bool { return out[ci][a].At < out[ci][b].At })
		}
		return out
	default:
		return [][]batcher.Submission{append([]batcher.Submission(nil), subs...)}
	}
}

func shareMode(s Strategy) qsm.ShareMode {
	switch s {
	case StrategyCQ:
		return qsm.ShareNone
	case StrategyUQ:
		return qsm.ShareWithinUQ
	default:
		return qsm.ShareAll
	}
}

// runGroup executes one plan graph's submissions along the arrival timeline.
// Batching happens globally before grouping (the batcher precedes the
// optimizer and clusterer in Figure 3), so each submission carries its batch
// release time: response times are measured from release, as a query cannot
// start before its batch is handed to the optimizer.
func runGroup(gi int, fleet *remotedb.Fleet, cat *catalog.Catalog, batches []batcher.Batch, opts Options) (*GroupReport, []*UQReport, []OptSample, error) {
	rng := dist.New(opts.Seed + uint64(gi)*7919 + 1)
	env := &operator.Env{
		Clock:   simclock.NewVirtual(0),
		Delays:  opts.Delays(rng),
		Metrics: &metrics.Counters{},
	}
	graph := plangraph.New("")
	controller := atc.New(graph, env, fleet)
	groupCat := cat.Fork()
	cm := costmodel.New(groupCat, opts.CostParams)
	manager := qsm.New(graph, controller, groupCat, cm, shareMode(opts.Strategy))
	manager.MemoryBudget = opts.MemoryBudget
	manager.ChargeOptimizer = opts.ChargeOptimizer

	var optSamples []OptSample
	for _, batch := range batches {
		// Keep executing admitted queries until the batch's release time.
		for !controller.AllDone() && env.Clock.Now() < batch.ReleasedAt {
			controller.RunRound()
		}
		if env.Clock.Now() < batch.ReleasedAt {
			env.Clock.AdvanceTo(batch.ReleasedAt)
		}
		released := make([]batcher.Submission, len(batch.Submissions))
		for i, s := range batch.Submissions {
			released[i] = batcher.Submission{At: batch.ReleasedAt, UQ: s.UQ}
		}
		// Feed observed statistics back before each optimization round
		// (§6.1 "updated cost estimates").
		manager.SyncCatalog()
		rep, err := manager.Admit(released, opts.Opt)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, c := range rep.CandidatesPerGroup {
			optSamples = append(optSamples, OptSample{
				Candidates:  c,
				Wall:        rep.OptimizeWall / time.Duration(len(rep.CandidatesPerGroup)),
				SearchNodes: rep.SearchNodes,
			})
		}
	}
	for controller.RunRound() {
	}
	manager.SyncCatalog()

	// The controller converts non-convergent rounds and operator panics
	// into per-merge errors (so a serving process survives them); an
	// experiment run must instead fail loudly — a truncated merge would
	// otherwise digest into the trajectory as if it were a result.
	for _, m := range controller.Merges() {
		if m.Err != nil {
			return nil, nil, nil, fmt.Errorf("exec: query %s failed: %w", m.RM.UQ.ID, m.Err)
		}
	}

	var uqReports []*UQReport
	for _, m := range controller.Merges() {
		dups := 0
		for _, e := range m.RM.Entries {
			dups += e.Duplicates()
		}
		uqReports = append(uqReports, &UQReport{
			UQ:          m.RM.UQ,
			GroupID:     gi,
			Arrival:     m.Arrival,
			Finished:    m.Finished,
			Results:     m.RM.Results(),
			ExecutedCQs: m.RM.ExecutedCQs(),
			Duplicates:  dups,
		})
	}
	gr := &GroupReport{
		GroupID:   gi,
		Metrics:   env.Metrics.Snapshot(),
		Stats:     graph.Stats(),
		Evictions: manager.Evictions(),
		StateRows: manager.StateSize(),
	}
	return gr, uqReports, optSamples, nil
}
