// Concurrent contrasts the four sharing configurations of §7.1 on the GUS
// synthetic workload: per-query isolation (ATC-CQ), sharing within a user
// query (ATC-UQ), one fully shared graph (ATC-FULL), and clustered graphs
// (ATC-CL) — printing per-query latencies and total work, like Figures 7/10.
package main

import (
	"fmt"
	"log"
	"time"

	qsys "repro"
)

func main() {
	w, err := qsys.GUS(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GUS instance 1: %d user queries arriving over %v\n\n",
		len(w.Submissions), w.Submissions[len(w.Submissions)-1].At.Round(time.Second))

	type row struct {
		strat qsys.Strategy
		lats  []time.Duration
		work  int64
	}
	var rows []row
	for _, strat := range []qsys.Strategy{qsys.ATCCQ, qsys.ATCUQ, qsys.ATCFULL, qsys.ATCCL} {
		rep, err := qsys.RunWorkload(w, strat, 1)
		if err != nil {
			log.Fatal(err)
		}
		r := row{strat: strat, work: rep.Total().TuplesConsumed()}
		for _, u := range rep.UQs {
			r.lats = append(r.lats, u.Latency())
		}
		rows = append(rows, r)
	}

	fmt.Printf("%-5s", "UQ")
	for _, r := range rows {
		fmt.Printf("%12s", r.strat)
	}
	fmt.Println()
	for i := 0; i < len(w.Submissions); i++ {
		fmt.Printf("%-5d", i+1)
		for _, r := range rows {
			fmt.Printf("%12s", r.lats[i].Round(10*time.Millisecond))
		}
		fmt.Println()
	}
	fmt.Printf("\n%-24s", "source tuples consumed:")
	for _, r := range rows {
		fmt.Printf("%12d", r.work)
	}
	fmt.Println("\n(sharing cuts total work; clustering additionally avoids one-graph contention)")
}
