// Concurrent demonstrates genuinely concurrent keyword searches sharing one
// plan graph through internal/service: many user goroutines pose searches at
// the same time, the admission window groups the arrivals into batches, and
// the executor drives them over shared source streams. It contrasts no
// admission window (every query admitted alone) against a positive window
// (concurrent arrivals co-admitted) under a bounded state budget — the
// serving-layer analogue of the paper's SINGLE-OPT vs BATCH-OPT comparison
// (§3, Figure 9).
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/service"
	"repro/internal/workload"
)

const (
	users    = 8
	requests = 6
	budget   = 500 // rows of retained state per shard (§6.3 eviction)
)

func main() {
	fmt.Printf("GUS instance 1: %d users x %d concurrent searches, state budget %d rows\n\n",
		users, requests, budget)

	type outcome struct {
		window  time.Duration
		stats   service.Stats
		latency time.Duration // mean wall latency
	}
	var outcomes []outcome
	for _, window := range []time.Duration{0, 25 * time.Millisecond} {
		w, err := workload.GUS(1, workload.GUSScaleDefault())
		if err != nil {
			log.Fatal(err)
		}
		svc := service.New(w, service.Config{
			K:            20,
			BatchWindow:  window,
			BatchSize:    5,
			MemoryBudget: budget,
		})

		var (
			wg  sync.WaitGroup
			mu  sync.Mutex
			sum time.Duration
			n   int
		)
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				rng := dist.New(uint64(u)*977 + 11)
				zipf := dist.NewZipf(rng, len(w.Submissions), 0.8)
				for i := 0; i < requests; i++ {
					kw := w.Submissions[zipf.Next()].UQ.Keywords
					t0 := time.Now()
					res, err := svc.Search(context.Background(), fmt.Sprintf("user%d", u), kw, 20)
					if err != nil {
						log.Fatalf("user %d: %v", u, err)
					}
					mu.Lock()
					sum += time.Since(t0)
					n++
					mu.Unlock()
					if u == 0 && i == 0 {
						fmt.Printf("  window %-5v: %s %v -> %d answers (rode a batch of %d, %d of %d networks executed)\n",
							window, res.ID, res.Keywords, len(res.Answers), res.BatchSize,
							res.ExecutedNetworks, res.CandidateNetworks)
					}
				}
			}(u)
		}
		wg.Wait()
		st := svc.Stats()
		svc.Close()
		outcomes = append(outcomes, outcome{window: window, stats: st, latency: sum / time.Duration(n)})
	}

	fmt.Printf("\n%-12s %12s %12s %10s %10s %10s %10s\n",
		"window", "streamTup", "replayed", "shared", "batches", "occupancy", "meanLat")
	for _, o := range outcomes {
		fmt.Printf("%-12v %12d %12d %9.1f%% %10d %10.2f %10v\n",
			o.window, o.stats.Work.StreamTuples, o.stats.Work.ReplayTuples,
			100*o.stats.SharedFraction(), o.stats.Service.Batches,
			o.stats.Service.BatchOccupancy.Mean, o.latency.Round(time.Millisecond))
	}
	fmt.Println("\nWith the admission window, concurrently arriving searches are co-admitted into one")
	fmt.Println("epoch and drive the same live source streams, so under the bounded state budget the")
	fmt.Println("service reads fewer source tuples for the same offered load.")
}
