// Refinement demonstrates cross-time state reuse (§6) quantitatively: the
// same keyword search is answered by a cold session and by a session warmed
// with related searches, comparing source tuples consumed and response time.
package main

import (
	"fmt"
	"log"

	qsys "repro"
)

func run(warmup bool) (consumed int64, latency string) {
	w, err := qsys.GUS(1)
	if err != nil {
		log.Fatal(err)
	}
	sys := qsys.NewSystem(w, qsys.Config{K: 25, Seed: 11})
	if warmup {
		// Warm the middleware with the workload's first three searches.
		for _, s := range w.Submissions[:3] {
			if _, err := sys.Submit(s.UQ); err != nil {
				log.Fatal(err)
			}
		}
	}
	before := sys.Stats().Work.TuplesConsumed()
	// Repose the first workload query's keywords as a "refining" user.
	res, err := sys.Search("refiner", w.Submissions[0].UQ.Keywords, 25)
	if err != nil {
		log.Fatal(err)
	}
	return sys.Stats().Work.TuplesConsumed() - before, res.Latency.String()
}

func main() {
	coldTuples, coldLat := run(false)
	warmTuples, warmLat := run(true)
	fmt.Println("repeating the workload's first search:")
	fmt.Printf("  cold session: %6d source tuples, %s\n", coldTuples, coldLat)
	fmt.Printf("  warm session: %6d source tuples, %s\n", warmTuples, warmLat)
	if coldTuples > 0 {
		fmt.Printf("  reuse saved %.0f%% of source reads\n",
			100*(1-float64(warmTuples)/float64(coldTuples)))
	}
}
