// Quickstart: build a tiny two-database workload with the public API, index
// keywords, and run a top-k search through the full shared-execution stack.
package main

import (
	"fmt"
	"log"
	"strings"

	qsys "repro"
)

func main() {
	// A paper catalogue in one database and an author registry in another —
	// keyword answers must join across both "remote" systems.
	papers := qsys.NewSchema("papers",
		qsys.Column{Name: "pid", Type: qsys.KindInt, Key: true},
		qsys.Column{Name: "topic", Type: qsys.KindString},
		qsys.Column{Name: "relevance", Type: qsys.KindFloat, Score: true},
	)
	wrote := qsys.NewSchema("wrote",
		qsys.Column{Name: "pid", Type: qsys.KindInt},
		qsys.Column{Name: "aid", Type: qsys.KindInt},
		qsys.Column{Name: "conf", Type: qsys.KindFloat, Score: true},
	)
	authors := qsys.NewSchema("authors",
		qsys.Column{Name: "aid", Type: qsys.KindInt, Key: true},
		qsys.Column{Name: "name", Type: qsys.KindString},
		qsys.Column{Name: "fame", Type: qsys.KindFloat, Score: true},
	)

	topics := []string{"databases", "systems", "theory", "networks"}
	names := []string{"ada", "grace", "edsger", "barbara"}
	var paperRows, wroteRows, authorRows [][]qsys.Value
	for i := 0; i < 400; i++ {
		paperRows = append(paperRows, []qsys.Value{
			qsys.Int(int64(i)), qsys.Str(topics[i%len(topics)]), qsys.Float(1.0 / float64(1+i)),
		})
		wroteRows = append(wroteRows, []qsys.Value{
			qsys.Int(int64(i)), qsys.Int(int64((i*13 + 5) % 100)), qsys.Float(1.0 / float64(1+i%37)),
		})
	}
	for a := 0; a < 100; a++ {
		authorRows = append(authorRows, []qsys.Value{
			qsys.Int(int64(a)), qsys.Str(names[a%len(names)]), qsys.Float(1.0 / float64(1+a)),
		})
	}

	w, err := qsys.NewBuilder().
		AddRelation("dblp", papers, paperRows, 0).
		AddRelation("dblp", wrote, wroteRows, 0).
		AddRelation("people", authors, authorRows, 0.1).
		AddJoin("wrote", 0, "papers", 0, 0.4).
		AddJoin("wrote", 1, "authors", 0, 0.5).
		IndexKeyword("databases", qsys.Match{Rel: "papers", Col: 1, Score: 0.9}).
		IndexKeyword("grace", qsys.Match{Rel: "authors", Col: 1, Score: 0.95}).
		Build("quickstart")
	if err != nil {
		log.Fatal(err)
	}

	sys := qsys.NewSystem(w, qsys.Config{K: 5, Seed: 1})
	res, err := sys.Search("me", []string{"databases", "grace"}, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("search %v -> %d candidate networks, %d executed, answered in %v (simulated)\n",
		res.Keywords, res.CandidateNetworks, res.ExecutedNetworks, res.Latency)
	for _, a := range res.Answers {
		parts := make([]string, len(a.Tuples))
		for i, t := range a.Tuples {
			parts[i] = t.String()
		}
		fmt.Printf("%2d. score %.4f  %s\n", a.Rank, a.Score, strings.Join(parts, " ⋈ "))
	}
	fmt.Println("\nsession:", sys.Stats())
}
