// Bioportal replays the paper's running example (§1–§2, Figure 1): two
// biologists pose overlapping keyword queries over UniProt, InterPro,
// GeneOntology and NCBI Entrez; the first then refines their query (KQ3,
// Table 3) and the session answers it largely from retained state.
package main

import (
	"fmt"
	"log"

	qsys "repro"
)

func main() {
	w, err := qsys.Bio()
	if err != nil {
		log.Fatal(err)
	}
	sys := qsys.NewSystem(w, qsys.Config{K: 10, Seed: 7})

	show := func(label string, res *qsys.SearchResult) {
		fmt.Printf("%s %v -> %d networks (%d executed), %v\n",
			label, res.Keywords, res.CandidateNetworks, res.ExecutedNetworks, res.Latency)
		for i, a := range res.Answers {
			if i == 3 {
				fmt.Printf("      ... %d more\n", len(res.Answers)-3)
				break
			}
			fmt.Printf("  %2d. %.5f via %s\n", a.Rank, a.Score, a.Query)
		}
	}

	before := sys.Stats().Work.TuplesConsumed()
	kq1, err := sys.Search("biologist-1", []string{"protein", "plasma membrane", "gene"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	show("KQ1", kq1)
	kq1Cost := sys.Stats().Work.TuplesConsumed() - before

	before = sys.Stats().Work.TuplesConsumed()
	kq2, err := sys.Search("biologist-2", []string{"protein", "metabolism"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	show("KQ2", kq2)
	kq2Cost := sys.Stats().Work.TuplesConsumed() - before

	// The refinement: KQ3's candidate networks are subexpressions of KQ1's
	// (Table 3), so the session grafts them onto the warm plan graph.
	before = sys.Stats().Work.TuplesConsumed()
	kq3, err := sys.Search("biologist-1", []string{"membrane", "gene"}, 10)
	if err != nil {
		log.Fatal(err)
	}
	show("KQ3", kq3)
	kq3Cost := sys.Stats().Work.TuplesConsumed() - before

	fmt.Printf("\nsource tuples consumed: KQ1=%d KQ2=%d KQ3=%d (KQ3 reuses KQ1/KQ2 state)\n",
		kq1Cost, kq2Cost, kq3Cost)
	fmt.Println("session:", sys.Stats())
}
